#include "sim/bench_harness.hh"

#include <algorithm>
#include <chrono> // psb-analyze: allow(R3)
#include <cstdio>
#include <map>
#include <memory>

#include "memory/cache.hh"
#include "memory/mshr.hh"
#include "memory/tlb.hh"
#include "predictors/diff_markov_table.hh"
#include "predictors/sfm_predictor.hh"
#include "predictors/stride_table.hh"
#include "prefetch/scheduler.hh"
#include "prefetch/stream_buffer.hh"
#include "sim/config.hh"
#include "sim/simulator.hh"
#include "util/alloc_guard.hh"
#include "util/json.hh"
#include "util/logging.hh"
#include "util/random.hh"
#include "util/sat_counter.hh"
#include "workloads/workload.hh"

namespace psb
{

namespace
{

/**
 * Wall-clock a callable in nanoseconds. This is the single place the
 * benchmark layer touches a clock; the simulator proper never does
 * (the R3 determinism rule), and everything derived from these
 * readings is emitted under a "wall_" key so tooling can tell the
 * nondeterministic fields apart from the contract-stable ones.
 */
template <typename Fn>
double
elapsedNs(const Fn &fn)
{
    using clock = std::chrono::steady_clock; // psb-analyze: allow(R3)
    auto t0 = clock::now();
    fn();
    auto t1 = clock::now();
    return std::chrono::duration<double, std::nano>(t1 - t0).count();
}

/** Lower median of a sample set (deterministic for even counts). */
double
medianOf(std::vector<double> samples)
{
    psb_assert(!samples.empty(), "median of an empty sample set");
    std::sort(samples.begin(), samples.end());
    return samples[(samples.size() - 1) / 2];
}

using CounterList = std::vector<std::pair<std::string, uint64_t>>;

// ---------------------------------------------------------------- //
// The standard kernel set. Every kernel builds its own component
// state and draws its stimulus from a fixed-seed Xorshift64, so the
// checksum and counters are pure functions of the iteration count.
// ---------------------------------------------------------------- //

uint64_t
kernelCacheLookup(uint64_t iters, CounterList &counters)
{
    SetAssocCache cache(CacheGeometry{32 * 1024, 4, 32}, "bench");
    Xorshift64 rng(0x1001);
    Addr addr{0};
    uint64_t hits = 0;
    uint64_t misses = 0;
    for (uint64_t i = 0; i < iters; ++i) {
        // Three strided references, then a jump inside a 1 MB
        // footprint: enough reuse to exercise both hit and fill paths.
        if ((i & 3) == 3)
            addr = Addr{rng.below(1u << 20) & ~uint64_t(31)};
        else
            addr = addr + 32;
        if (cache.touch(addr)) {
            ++hits;
        } else {
            ++misses;
            cache.insert(addr);
        }
    }
    counters.emplace_back("hits", hits);
    counters.emplace_back("misses", misses);
    return hits * 31 + misses;
}

uint64_t
kernelTlbLookup(uint64_t iters, CounterList &counters)
{
    Tlb tlb(128, 8192, CycleDelta{30});
    Xorshift64 rng(0x1002);
    Addr addr{0};
    uint64_t penalty = 0;
    for (uint64_t i = 0; i < iters; ++i) {
        // Mostly same-page walks with occasional far jumps, matching
        // the locality the MRU shortcut in Tlb::translate targets.
        if (rng.below(100) < 5)
            addr = Addr{rng.below(uint64_t(1) << 26) & ~uint64_t(7)};
        else
            addr = addr + 64;
        penalty += tlb.translate(addr).raw();
    }
    counters.emplace_back("penalty_cycles", penalty);
    return penalty;
}

uint64_t
kernelMshrSearch(uint64_t iters, CounterList &counters)
{
    MshrFile mshrs(8, "bench");
    Xorshift64 rng(0x1003);
    Cycle now{};
    uint64_t inflight_hits = 0;
    uint64_t allocations = 0;
    uint64_t full_stalls = 0;
    uint64_t checksum = 0;
    for (uint64_t i = 0; i < iters; ++i) {
        BlockAddr block{rng.below(48)};
        if (auto ready = mshrs.lookup(block, now)) {
            ++inflight_hits;
            checksum += ready->raw();
        } else if (!mshrs.full(now)) {
            mshrs.allocate(block, now + CycleDelta{120});
            ++allocations;
        } else {
            ++full_stalls;
        }
        now += CycleDelta{rng.below(8)};
    }
    counters.emplace_back("allocations", allocations);
    counters.emplace_back("full_stalls", full_stalls);
    counters.emplace_back("inflight_hits", inflight_hits);
    return checksum + allocations + full_stalls;
}

uint64_t
kernelStrideProbe(uint64_t iters, CounterList &counters)
{
    StrideTable table;
    Xorshift64 rng(0x1004);
    constexpr unsigned numPcs = 64;
    uint64_t addrs[numPcs];
    for (unsigned p = 0; p < numPcs; ++p)
        addrs[p] = uint64_t(p) << 12;
    uint64_t predicted = 0;
    uint64_t checksum = 0;
    for (uint64_t i = 0; i < iters; ++i) {
        unsigned p = unsigned(rng.below(numPcs));
        Addr pc{0x4000 + 8 * uint64_t(p)};
        // Per-PC strides of -3..+3 blocks; a 3% chance of a random
        // break keeps the two-delta replacement path warm.
        int64_t stride = (int64_t(p % 7) - 3) * 32;
        if (rng.below(100) < 3)
            addrs[p] = rng.below(uint64_t(1) << 24);
        else
            addrs[p] = uint64_t(int64_t(addrs[p]) + stride);
        StrideTrainResult res = table.train(pc, Addr{addrs[p]});
        table.recordOutcome(pc, res.stridePredicted);
        if (res.stridePredicted)
            ++predicted;
        checksum += uint64_t(table.predictedStride(pc).raw()) +
                    table.confidence(pc);
    }
    counters.emplace_back("predicted", predicted);
    return checksum;
}

uint64_t
kernelMarkovProbe(uint64_t iters, CounterList &counters)
{
    DiffMarkovTable table;
    Xorshift64 rng(0x1005);
    // A pointer-chasing walk over 64K blocks: the multiplicative hash
    // revisits transitions, so lookups hit recorded entries.
    uint64_t node = 1;
    BlockAddr prev{node};
    uint64_t hits = 0;
    uint64_t checksum = 0;
    for (uint64_t i = 0; i < iters; ++i) {
        node = (node * 2654435761u + rng.below(4)) & 0xffff;
        BlockAddr cur{node};
        table.update(prev, cur);
        if (auto predicted = table.lookup(cur)) {
            ++hits;
            checksum += predicted->raw();
        }
        prev = cur;
    }
    counters.emplace_back("hits", hits);
    counters.emplace_back("overflows", table.overflows());
    counters.emplace_back("updates", table.updates());
    return checksum + table.updates();
}

uint64_t
kernelSfmPredict(uint64_t iters, CounterList &counters)
{
    SfmPredictor sfm;
    Xorshift64 rng(0x1006);
    constexpr unsigned numPcs = 16;
    uint64_t addrs[numPcs];
    for (unsigned p = 0; p < numPcs; ++p)
        addrs[p] = uint64_t(p + 1) << 16;
    uint64_t predictions = 0;
    uint64_t noPrediction = 0;
    uint64_t checksum = 0;
    for (uint64_t i = 0; i < iters; ++i) {
        unsigned p = unsigned(rng.below(numPcs));
        Addr pc{0x8000 + 8 * uint64_t(p)};
        // Half the loads stride, half pointer-chase: the stride table
        // filters the former so the Markov half sees the latter.
        if (p & 1)
            addrs[p] += 32 * (1 + p % 3);
        else
            addrs[p] = (addrs[p] * 2654435761u) & 0x3fffff;
        sfm.train(pc, Addr{addrs[p]});
        if ((i & 3) == 0) {
            StreamState state = sfm.allocateStream(pc, Addr{addrs[p]});
            for (int k = 0; k < 4; ++k) {
                if (auto next = sfm.predictNext(state)) {
                    ++predictions;
                    checksum += next->raw();
                } else {
                    ++noPrediction;
                }
            }
        }
    }
    counters.emplace_back("no_prediction", noPrediction);
    counters.emplace_back("predictions", predictions);
    return checksum + predictions;
}

uint64_t
kernelStreamBufferSched(uint64_t iters, CounterList &counters)
{
    StreamBufferFile file(StreamBufferConfig{});
    BufferScheduler predictPort(SchedPolicy::Priority,
                                file.numBuffers(), "bench-predict");
    BufferScheduler prefetchPort(SchedPolicy::RoundRobin,
                                 file.numBuffers(), "bench-prefetch");
    Xorshift64 rng(0x1007);
    uint64_t lookupHits = 0;
    uint64_t checksum = 0;
    Cycle now{};
    for (uint64_t i = 0; i < iters; ++i) {
        ++now;
        // Occasional (re)allocation keeps streams and priorities live.
        unsigned b = unsigned(rng.below(file.numBuffers()));
        if (!file.buffer(b).allocated() || rng.below(100) < 1) {
            StreamState state;
            state.loadPc = Addr{0x100 + 8 * uint64_t(b)};
            state.lastAddr = BlockAddr{rng.below(4096)};
            state.stride = BlockDelta{int64_t(rng.below(3)) + 1};
            file.buffer(b).allocateStream(state,
                                          uint32_t(rng.below(13)));
        }
        // One predictor-port grant: fill a free slot of the winner.
        int pb = predictPort.pick(
            file,
            [&](unsigned idx) {
                return file.buffer(idx).allocated() &&
                       file.buffer(idx).freeEntry() >= 0;
            },
            [&](unsigned idx) {
                return file.buffer(idx).lastPredictStamp;
            });
        if (pb >= 0) {
            StreamBuffer &buf = file.buffer(unsigned(pb));
            int slot = buf.freeEntry();
            buf.state.lastAddr += buf.state.stride;
            if (!file.contains(buf.state.lastAddr))
                buf.fillEntry(slot, buf.state.lastAddr);
            buf.lastPredictStamp = file.nextStamp();
        }
        // One prefetch-port grant: issue the winner's pending entry.
        int fb = prefetchPort.pick(
            file,
            [&](unsigned idx) {
                return file.buffer(idx).pendingPrefetchEntry() >= 0;
            },
            [&](unsigned idx) {
                return file.buffer(idx).lastPrefetchStamp;
            });
        if (fb >= 0) {
            StreamBuffer &buf = file.buffer(unsigned(fb));
            int slot = buf.pendingPrefetchEntry();
            buf.markPrefetched(slot, now + CycleDelta{12});
            buf.lastPrefetchStamp = file.nextStamp();
        }
        // A demand lookup against the same block range; a hit consumes
        // the entry and rewards the buffer, as the PSB does.
        if (auto hit = file.findBlock(BlockAddr{rng.below(4096)})) {
            StreamBuffer &buf = file.buffer(hit->buf);
            buf.clearEntry(hit->entry);
            buf.priority.increment(2);
            buf.notePriorityPeak();
            ++lookupHits;
            checksum += hit->buf + uint64_t(hit->entry);
        }
    }
    counters.emplace_back("lookup_hits", lookupHits);
    counters.emplace_back("predict_grants", predictPort.grants());
    counters.emplace_back("prefetch_grants", prefetchPort.grants());
    return checksum + predictPort.grants() + prefetchPort.grants();
}

uint64_t
kernelSatCounterUpdate(uint64_t iters, CounterList &counters)
{
    constexpr unsigned numCounters = 64;
    std::vector<SatCounter> ctrs;
    ctrs.reserve(numCounters);
    for (unsigned i = 0; i < numCounters; ++i)
        ctrs.emplace_back(12, i % 13);
    Xorshift64 rng(0x1008);
    uint64_t checksum = 0;
    for (uint64_t i = 0; i < iters; ++i) {
        uint64_t r = rng.next();
        SatCounter &ctr = ctrs[r % numCounters];
        if (r & (uint64_t(1) << 32))
            ctr.increment(1 + unsigned((r >> 33) % 3));
        else
            ctr.decrement(1);
        checksum += ctr.value();
    }
    counters.emplace_back("final_sum", [&] {
        uint64_t sum = 0;
        for (const SatCounter &ctr : ctrs)
            sum += ctr.value();
        return sum;
    }());
    return checksum;
}

uint64_t
kernelOoOCoreLoop(uint64_t iters, CounterList &counters)
{
    // The full per-cycle pipeline loop with fast-forward disabled, so
    // the wall time per iteration is the cost of simulating one
    // committed instruction through commit/issue/fetch every cycle.
    auto trace = makeWorkload("health", 1);
    psb_assert(trace != nullptr, "health workload must exist");
    SimConfig cfg = makePaperConfig(PaperConfig::Base);
    cfg.warmupInstructions = iters / 5;
    cfg.maxInstructions = iters;
    cfg.fastForward = false;
    Simulator sim(cfg, *trace);
    SimResult res = sim.run();
    counters.emplace_back("cycles", res.core.cycles);
    counters.emplace_back("instructions", res.core.instructions);
    return res.core.cycles;
}

// ---------------------------------------------------------------- //
// JSON emission: hand-rolled so the key order (sorted) and number
// formatting (integers verbatim, floats "%.3f") are fixed by
// construction, never by library defaults.
// ---------------------------------------------------------------- //

std::string
formatWall(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", v);
    return buf;
}

void
emitCounterObject(std::string &out, const CounterList &counters,
                  const std::string &indent)
{
    CounterList sorted = counters;
    std::sort(sorted.begin(), sorted.end());
    out += "{";
    for (size_t i = 0; i < sorted.size(); ++i) {
        out += i ? ",\n" : "\n";
        out += indent + "  \"" + sorted[i].first +
               "\": " + std::to_string(sorted[i].second);
    }
    out += sorted.empty() ? "}" : "\n" + indent + "}";
}

void
emitSimCell(std::string &out, const BenchSimResult &cell,
            const std::string &indent)
{
    out += "{\n";
    out += indent + "  \"cycles\": " + std::to_string(cell.cycles) +
           ",\n";
    out += indent +
           "  \"instructions\": " + std::to_string(cell.instructions) +
           ",\n";
    out += indent + "  \"steady_state_allocs\": " +
           std::to_string(cell.steadyStateAllocs) + ",\n";
    out += indent + "  \"wall_cycles_per_sec\": " +
           formatWall(cell.wallCyclesPerSec) + ",\n";
    out += indent + "  \"wall_ms\": " + formatWall(cell.wallMs) + "\n";
    out += indent + "}";
}

} // namespace

BenchHarness::BenchHarness(const BenchHarnessOptions &opts) : _opts(opts)
{
    psb_assert(_opts.repeats > 0, "bench harness needs repeats > 0");
}

void
BenchHarness::addKernel(const std::string &name, uint64_t iterations,
                        uint64_t quick_iterations, KernelFn fn)
{
    for (const Kernel &k : _kernels)
        psb_assert(k.name != name, "duplicate bench kernel name");
    _kernels.push_back(
        Kernel{name, iterations, quick_iterations, std::move(fn)});
}

std::vector<std::string>
BenchHarness::kernelNames() const
{
    std::vector<std::string> names;
    names.reserve(_kernels.size());
    for (const Kernel &k : _kernels)
        names.push_back(k.name);
    return names;
}

std::vector<BenchKernelResult>
BenchHarness::runKernels() const
{
    std::vector<BenchKernelResult> results;
    for (const Kernel &kernel : _kernels) {
        if (!_opts.filter.empty() &&
            kernel.name.find(_opts.filter) == std::string::npos)
            continue;
        uint64_t iters =
            _opts.quick ? kernel.quickIterations : kernel.iterations;
        BenchKernelResult res;
        res.name = kernel.name;
        res.iterations = iters;
        std::vector<double> samples;
        samples.reserve(_opts.repeats);
        for (unsigned rep = 0; rep < _opts.repeats; ++rep) {
            CounterList counters;
            uint64_t checksum = 0;
            double ns = elapsedNs(
                [&] { checksum = kernel.fn(iters, counters); });
            samples.push_back(ns / double(iters));
            if (rep == 0) {
                res.checksum = checksum;
                res.counters = std::move(counters);
            } else if (checksum != res.checksum) {
                fatal("bench kernel '%s' is nondeterministic: checksum "
                      "%llu vs %llu across repeats",
                      kernel.name.c_str(),
                      (unsigned long long)checksum,
                      (unsigned long long)res.checksum);
            }
        }
        res.wallNsPerIter = medianOf(samples);
        res.wallNsPerIterMin =
            *std::min_element(samples.begin(), samples.end());
        results.push_back(std::move(res));
    }
    std::sort(results.begin(), results.end(),
              [](const BenchKernelResult &a, const BenchKernelResult &b) {
                  return a.name < b.name;
              });
    return results;
}

std::vector<BenchSimResult>
BenchHarness::runSimMatrix() const
{
    std::vector<BenchSimResult> cells;
    if (_opts.skipSims)
        return cells;

    std::vector<std::string> workloads = workloadNames();
    std::vector<PaperConfig> configs(std::begin(paperConfigs),
                                     std::end(paperConfigs));
    if (_opts.quick) {
        workloads = {"health", "gs"};
        configs = {PaperConfig::Base, PaperConfig::ConfAllocPriority};
    }

    for (const std::string &workload : workloads) {
        for (PaperConfig paper : configs) {
            BenchSimResult cell;
            cell.name = workload + "/" + paperConfigName(paper);
            std::vector<double> samples;
            samples.reserve(_opts.repeats);
            for (unsigned rep = 0; rep < _opts.repeats; ++rep) {
                auto trace = makeWorkload(workload);
                psb_assert(trace != nullptr, "unknown bench workload");
                SimConfig cfg = makePaperConfig(paper);
                cfg.warmupInstructions = _opts.simWarmup;
                cfg.maxInstructions = _opts.simInstructions;
                SimResult res;
                uint64_t allocs0 = AllocGuard::scopedAllocs();
                double ns = elapsedNs([&] {
                    Simulator sim(cfg, *trace);
                    res = sim.run();
                });
                samples.push_back(ns / 1e6);
                cell.cycles = res.core.cycles;
                cell.instructions = res.core.instructions;
                cell.steadyStateAllocs =
                    AllocGuard::scopedAllocs() - allocs0;
            }
            cell.wallMs = medianOf(samples);
            cell.wallCyclesPerSec =
                cell.wallMs > 0.0
                    ? double(cell.cycles) / (cell.wallMs / 1e3)
                    : 0.0;
            cells.push_back(std::move(cell));
        }
    }
    std::sort(cells.begin(), cells.end(),
              [](const BenchSimResult &a, const BenchSimResult &b) {
                  return a.name < b.name;
              });

    BenchSimResult total;
    total.name = "total";
    for (const BenchSimResult &cell : cells) {
        total.cycles += cell.cycles;
        total.instructions += cell.instructions;
        total.steadyStateAllocs += cell.steadyStateAllocs;
        total.wallMs += cell.wallMs;
    }
    total.wallCyclesPerSec =
        total.wallMs > 0.0 ? double(total.cycles) / (total.wallMs / 1e3)
                           : 0.0;
    cells.push_back(std::move(total));
    return cells;
}

void
registerDefaultKernels(BenchHarness &harness)
{
    harness.addKernel("cache_lookup", 2'000'000, 100'000,
                      kernelCacheLookup);
    harness.addKernel("markov_probe", 4'000'000, 100'000,
                      kernelMarkovProbe);
    harness.addKernel("mshr_search", 2'000'000, 100'000,
                      kernelMshrSearch);
    harness.addKernel("ooo_core_loop", 150'000, 20'000,
                      kernelOoOCoreLoop);
    harness.addKernel("satcounter_update", 8'000'000, 200'000,
                      kernelSatCounterUpdate);
    harness.addKernel("sfm_predict", 1'000'000, 50'000,
                      kernelSfmPredict);
    harness.addKernel("stream_buffer_sched", 500'000, 20'000,
                      kernelStreamBufferSched);
    harness.addKernel("stride_probe", 2'000'000, 100'000,
                      kernelStrideProbe);
    harness.addKernel("tlb_lookup", 4'000'000, 100'000,
                      kernelTlbLookup);
}

std::string
benchJson(const std::vector<BenchKernelResult> &kernels,
          const std::vector<BenchSimResult> &sims,
          const BenchHarnessOptions &opts)
{
    // Separate the aggregate row from the matrix cells; both are
    // sorted by name (runSimMatrix already guarantees it, but emission
    // must not depend on the caller).
    std::map<std::string, const BenchSimResult *> cellMap;
    const BenchSimResult *total = nullptr;
    for (const BenchSimResult &cell : sims) {
        if (cell.name == "total")
            total = &cell;
        else
            cellMap[cell.name] = &cell;
    }
    std::map<std::string, const BenchKernelResult *> kernelMap;
    for (const BenchKernelResult &kernel : kernels)
        kernelMap[kernel.name] = &kernel;

    std::string out = "{\n";

    out += "  \"fig5\": {";
    if (!cellMap.empty() || total) {
        out += "\n    \"cells\": {";
        size_t i = 0;
        for (const auto &[name, cell] : cellMap) {
            out += i++ ? ",\n" : "\n";
            out += "      \"" + name + "\": ";
            emitSimCell(out, *cell, "      ");
        }
        out += cellMap.empty() ? "}" : "\n    }";
        if (total) {
            out += ",\n    \"total\": ";
            emitSimCell(out, *total, "    ");
        }
        out += "\n  ";
    }
    out += "},\n";

    out += "  \"kernels\": {";
    size_t i = 0;
    for (const auto &[name, kernel] : kernelMap) {
        out += i++ ? ",\n" : "\n";
        out += "    \"" + name + "\": {\n";
        out += "      \"checksum\": " +
               std::to_string(kernel->checksum) + ",\n";
        out += "      \"counters\": ";
        emitCounterObject(out, kernel->counters, "      ");
        out += ",\n";
        out += "      \"iterations\": " +
               std::to_string(kernel->iterations) + ",\n";
        out += "      \"wall_ns_per_iter\": " +
               formatWall(kernel->wallNsPerIter) + ",\n";
        out += "      \"wall_ns_per_iter_min\": " +
               formatWall(kernel->wallNsPerIterMin) + "\n";
        out += "    }";
    }
    out += kernelMap.empty() ? "},\n" : "\n  },\n";

    out += "  \"meta\": {\n";
    out += "    \"hot_callgraph_edges\": " +
           std::to_string(opts.hotCallgraphEdges) + ",\n";
    out += "    \"hot_callgraph_reachable\": " +
           std::to_string(opts.hotCallgraphReachable) + ",\n";
    out += "    \"hot_callgraph_roots\": " +
           std::to_string(opts.hotCallgraphRoots) + ",\n";
    out += std::string("    \"quick\": ") +
           (opts.quick ? "true" : "false") + ",\n";
    out += "    \"repeats\": " + std::to_string(opts.repeats) + ",\n";
    out += "    \"schema_version\": 1,\n";
    out += "    \"sim_instructions\": " +
           std::to_string(opts.skipSims ? 0 : opts.simInstructions) +
           ",\n";
    out += "    \"sim_warmup\": " +
           std::to_string(opts.skipSims ? 0 : opts.simWarmup) + "\n";
    out += "  }\n";
    out += "}\n";
    return out;
}

std::string
maskWallFields(const std::string &json)
{
    std::string out;
    out.reserve(json.size());
    size_t i = 0;
    while (i < json.size()) {
        size_t key = json.find("\"wall_", i);
        if (key == std::string::npos) {
            out.append(json, i, std::string::npos);
            break;
        }
        size_t colon = json.find(':', key);
        if (colon == std::string::npos) {
            out.append(json, i, std::string::npos);
            break;
        }
        out.append(json, i, colon + 1 - i);
        out += " 0";
        size_t end = json.find_first_of(",}\n", colon + 1);
        if (end == std::string::npos)
            break;
        i = end;
    }
    return out;
}

namespace
{

/** Leaf scalar rendered for an exact-match message. */
std::string
describeLeaf(const JsonValue &v)
{
    switch (v.kind) {
    case JsonValue::Kind::Null: return "null";
    case JsonValue::Kind::Bool: return v.boolean ? "true" : "false";
    case JsonValue::Kind::Number: return v.raw;
    case JsonValue::Kind::String: return "\"" + v.str + "\"";
    default: return "<composite>";
    }
}

void
compareNodes(const JsonValue &oldv, const JsonValue &newv,
             const std::string &path, const std::string &key,
             double max_regress_pct, BenchCompareResult &result)
{
    bool wallKey = key.rfind("wall_", 0) == 0;
    if (wallKey) {
        if (!oldv.isNumber() || !newv.isNumber()) {
            result.mismatch = true;
            result.messages.push_back(path +
                                      ": wall field is not a number");
            return;
        }
        if (oldv.number <= 0.0)
            return; // no baseline signal to gate on
        // For throughput fields lower is worse; for raw wall times
        // higher is worse.
        bool higherIsBetter =
            key.find("per_sec") != std::string::npos;
        double worsePct =
            higherIsBetter
                ? 100.0 * (oldv.number - newv.number) / oldv.number
                : 100.0 * (newv.number - oldv.number) / oldv.number;
        if (worsePct > max_regress_pct) {
            result.regression = true;
            char buf[64];
            std::snprintf(buf, sizeof(buf), "%.1f", worsePct);
            result.messages.push_back(
                path + ": regressed " + buf + "% (" + oldv.raw +
                " -> " + newv.raw + ", threshold " +
                formatWall(max_regress_pct) + "%)");
        }
        return;
    }

    if (oldv.kind != newv.kind) {
        result.mismatch = true;
        result.messages.push_back(path + ": value kind changed");
        return;
    }
    switch (oldv.kind) {
    case JsonValue::Kind::Object: {
        for (const auto &[k, v] : oldv.object) {
            const JsonValue *other = newv.find(k);
            if (!other) {
                result.mismatch = true;
                result.messages.push_back(path + "." + k +
                                          ": missing from new document");
                continue;
            }
            compareNodes(v, *other, path + "." + k, k,
                         max_regress_pct, result);
        }
        for (const auto &[k, v] : newv.object) {
            (void)v;
            if (!oldv.find(k)) {
                result.mismatch = true;
                result.messages.push_back(path + "." + k +
                                          ": not in old document");
            }
        }
        break;
    }
    case JsonValue::Kind::Array: {
        if (oldv.array.size() != newv.array.size()) {
            result.mismatch = true;
            result.messages.push_back(path + ": array length differs");
            break;
        }
        for (size_t i = 0; i < oldv.array.size(); ++i)
            compareNodes(oldv.array[i], newv.array[i],
                         path + "[" + std::to_string(i) + "]", "",
                         max_regress_pct, result);
        break;
    }
    case JsonValue::Kind::Number:
        // Exact spelling comparison: the emitter is deterministic, so
        // any drift in a non-wall number is a real behaviour change.
        if (oldv.raw != newv.raw) {
            result.mismatch = true;
            result.messages.push_back(path + ": " + oldv.raw + " -> " +
                                      newv.raw);
        }
        break;
    default:
        if (oldv.boolean != newv.boolean || oldv.str != newv.str ||
            oldv.kind != newv.kind) {
            result.mismatch = true;
            result.messages.push_back(path + ": " + describeLeaf(oldv) +
                                      " -> " + describeLeaf(newv));
        }
        break;
    }
}

} // namespace

BenchCompareResult
compareBenchJson(const std::string &old_json,
                 const std::string &new_json, double max_regress_pct)
{
    BenchCompareResult result;
    JsonValue oldDoc;
    JsonValue newDoc;
    std::string error;
    if (!parseJson(old_json, oldDoc, error)) {
        result.mismatch = true;
        result.messages.push_back("old document: " + error);
        return result;
    }
    if (!parseJson(new_json, newDoc, error)) {
        result.mismatch = true;
        result.messages.push_back("new document: " + error);
        return result;
    }
    compareNodes(oldDoc, newDoc, "$", "", max_regress_pct, result);
    return result;
}

} // namespace psb
