/**
 * @file
 * Parallel sweep engine: a fixed-size worker-pool that runs N
 * independent jobs concurrently, each in full isolation (shared-
 * nothing; every simulation job owns its Simulator, StatsRegistry,
 * workload, and PRNG), with per-job cooperative timeout, bounded
 * retry-on-failure, and a progress line per completed job.
 *
 * Determinism contract (DESIGN.md §10): a job's outcome is a pure
 * function of its own inputs, never of sibling jobs, worker count, or
 * completion order. run() returns results sorted by job key and
 * mergeStatsJson() renders them with the same sorted-key / %.17g
 * discipline as util/stats_json, so the merged document is
 * byte-identical at --jobs 1, 2, or 8 (the sweep_invariance ctest and
 * SweepEngineTest pin this down).
 *
 * Concurrency model: the worker threads share exactly three things —
 * an atomic next-job cursor, their own job slot (each slot touched by
 * one worker at a time), and a mutex-protected completion queue
 * drained by the calling thread, which is the only thread that writes
 * progress output. Timeouts are *cooperative*: the engine sets the
 * job's CancelToken when the deadline passes and the job is expected
 * to poll it at convenient points; simulation jobs terminate by
 * construction (bounded instruction count), so only misbehaving
 * test-injected jobs ever need the token. Wall-clock time is used
 * only for timeout control and progress display, never in any job
 * result (the R3 determinism rule's allow() markers in sweep.cc are
 * exactly these control-plane uses).
 *
 * Event tracing (util/trace.hh) is process-global and therefore
 * incompatible with concurrent jobs: run() refuses to start with more
 * than one worker while tracing is enabled.
 */

#ifndef PSB_SIM_SWEEP_HH
#define PSB_SIM_SWEEP_HH

#include <atomic>
#include <chrono>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

namespace psb
{

/**
 * Cooperative cancellation flag shared between the engine (writer)
 * and one running job (reader). The only cross-thread state a job
 * ever sees.
 */
class CancelToken
{
  public:
    bool
    cancelled() const
    {
        return _flag.load(std::memory_order_acquire);
    }

    void
    cancel()
    {
        _flag.store(true, std::memory_order_release);
    }

  private:
    std::atomic<bool> _flag{false};
};

/** What the engine hands a job at the start of each attempt. */
struct JobContext
{
    const CancelToken *cancel = nullptr;
    unsigned attempt = 0; ///< 0 on the first try, 1 on first retry...

    /** Poll at convenient points; return promptly when set. */
    bool
    cancelled() const
    {
        return cancel != nullptr && cancel->cancelled();
    }
};

/** What one job attempt produces. */
struct JobOutcome
{
    bool ok = false;
    std::string payload; ///< flat stats JSON for simulation jobs
    std::string error;   ///< deterministic message when !ok
};

/** One schedulable unit of work. */
struct SweepJob
{
    /**
     * Unique sort key; the merged document is ordered by it, which is
     * what makes the output independent of completion order.
     */
    std::string key;
    std::function<JobOutcome(const JobContext &)> run;
};

enum class JobStatus
{
    Ok,       ///< an attempt succeeded
    Failed,   ///< every attempt failed (or threw)
    TimedOut, ///< the deadline passed and the job honoured the token
};

const char *jobStatusName(JobStatus status);

/** Final per-job record, after retries. */
struct JobResult
{
    std::string key;
    JobStatus status = JobStatus::Failed;
    unsigned attempts = 0; ///< attempts actually made
    std::string payload;   ///< JobOutcome payload of the Ok attempt
    std::string error;     ///< last attempt's error when not Ok
};

/** Engine-wide knobs. */
struct SweepOptions
{
    unsigned jobs = 1;       ///< worker threads (min 1)
    unsigned maxRetries = 0; ///< extra attempts after a failure
    /** Per-job deadline; zero disables. Timeouts are not retried. */
    std::chrono::milliseconds timeout{0};
    /**
     * Progress sink ("[3/24] key: ok (0.41s)" per completion),
     * written only from the thread that called run(). Null = silent.
     */
    std::ostream *progress = nullptr;
};

/** See file comment. */
class SweepEngine
{
  public:
    explicit SweepEngine(SweepOptions opts) : _opts(opts) {}

    /**
     * Run every job to completion (or timeout) and return one result
     * per job, sorted by key. Blocks the calling thread; reentrant
     * per engine instance is not supported (make a new engine).
     * Duplicate job keys are a caller bug and panic.
     */
    std::vector<JobResult> run(const std::vector<SweepJob> &jobs);

    /**
     * Render results (as returned by run(): sorted by key) as one
     * deterministic JSON document keyed by job key:
     *
     *   {
     *     "jobs": {
     *       "<key>": {
     *         "status": "ok",
     *         "attempts": 1,
     *         "stats": { ...the job's flat stats JSON... }
     *       },
     *       ...
     *     }
     *   }
     *
     * Failed jobs carry "error" instead of "stats". Byte-identical
     * for byte-identical results — no timestamps, durations, or host
     * facts are ever included.
     */
    static std::string mergeStatsJson(
        const std::vector<JobResult> &results);

  private:
    SweepOptions _opts;
};

} // namespace psb

#endif // PSB_SIM_SWEEP_HH
