#include "sim/sweep_spec.hh"

#include "sim/simulator.hh"
#include "util/json.hh"
#include "workloads/workload.hh"

namespace psb
{

namespace
{

bool
specError(std::string &error, const std::string &msg)
{
    error = "sweep spec: " + msg;
    return false;
}

bool
knownConfigKey(const std::string &key)
{
    for (const std::string &k : simConfigKeys()) {
        if (k == key)
            return true;
    }
    return false;
}

/** Validate a config key name against the strict catalog. */
bool
checkConfigKey(const std::string &where, const std::string &key,
               std::string &error)
{
    if (knownConfigKey(key))
        return true;
    std::string valid;
    for (const std::string &k : simConfigKeys())
        valid += (valid.empty() ? "" : ", ") + k;
    return specError(error, "unknown config key \"" + key + "\" in \"" +
                                where + "\" (valid: " + valid + ")");
}

} // namespace

bool
parseSweepSpec(const std::string &text, SweepSpec &out,
               std::string &error)
{
    out = SweepSpec{};
    JsonValue doc;
    if (!parseJson(text, doc, error)) {
        error = "sweep spec: " + error;
        return false;
    }
    if (!doc.isObject())
        return specError(error, "top level must be an object");

    for (const auto &[key, value] : doc.object) {
        if (key == "jobs") {
            uint64_t n = 0;
            if (!value.asUInt(n) || n == 0)
                return specError(error,
                                 "\"jobs\" must be a positive integer");
            out.jobs = unsigned(n);
        } else if (key == "workloads") {
            if (!value.isArray() || value.array.empty())
                return specError(
                    error, "\"workloads\" must be a non-empty array");
            for (const JsonValue &w : value.array) {
                if (!w.isString())
                    return specError(
                        error, "\"workloads\" entries must be strings");
                out.workloads.push_back(w.str);
            }
        } else if (key == "seeds") {
            if (!value.isArray() || value.array.empty())
                return specError(error,
                                 "\"seeds\" must be a non-empty array");
            out.seeds.clear();
            for (const JsonValue &s : value.array) {
                uint64_t n = 0;
                if (!s.asUInt(n))
                    return specError(error,
                                     "\"seeds\" entries must be "
                                     "non-negative integers");
                out.seeds.push_back(n);
            }
        } else if (key == "base") {
            if (!value.isObject())
                return specError(error, "\"base\" must be an object");
            for (const auto &[k, v] : value.object) {
                if (!checkConfigKey("base", k, error))
                    return false;
                std::string token;
                if (!v.asConfigToken(token))
                    return specError(error,
                                     "\"base\" value for \"" + k +
                                         "\" must be a scalar");
                out.base.emplace_back(k, token);
            }
        } else if (key == "axes") {
            if (!value.isObject())
                return specError(error, "\"axes\" must be an object");
            for (const auto &[k, v] : value.object) {
                if (!checkConfigKey("axes", k, error))
                    return false;
                if (!v.isArray() || v.array.empty())
                    return specError(error,
                                     "axis \"" + k +
                                         "\" must be a non-empty array");
                std::vector<std::string> tokens;
                for (const JsonValue &item : v.array) {
                    std::string token;
                    if (!item.asConfigToken(token))
                        return specError(error,
                                         "axis \"" + k +
                                             "\" values must be "
                                             "scalars");
                    tokens.push_back(token);
                }
                out.axes.emplace_back(k, std::move(tokens));
            }
        } else {
            return specError(
                error,
                "unknown section \"" + key +
                    "\" (valid: jobs, workloads, seeds, base, axes)");
        }
    }

    if (out.workloads.empty())
        return specError(error, "\"workloads\" is required");

    // A key both fixed in base and varied by an axis is contradictory.
    for (const auto &[axis, _values] : out.axes) {
        for (const auto &[bkey, _v] : out.base) {
            if (axis == bkey)
                return specError(error, "key \"" + axis +
                                            "\" appears in both "
                                            "\"base\" and \"axes\"");
        }
    }
    return true;
}

bool
expandSweepSpec(const SweepSpec &spec, std::vector<SweepRun> &out,
                std::string &error)
{
    out.clear();

    // Validate base once against a scratch config; per-run application
    // below starts from a fresh default so runs stay independent.
    {
        SimConfig scratch;
        for (const auto &[key, value] : spec.base) {
            if (!applyConfigKey(scratch, key, value, error)) {
                error = "sweep spec: " + error;
                return false;
            }
        }
    }

    // Cartesian product over the axes: decompose a linear index with
    // the last axis fastest, so the grid order matches nested loops
    // in spec order.
    size_t gridSize = 1;
    for (const auto &[_key, values] : spec.axes)
        gridSize *= values.size();

    std::vector<size_t> idx(spec.axes.size(), 0);
    for (const std::string &workload : spec.workloads) {
        for (uint64_t seed : spec.seeds) {
            for (size_t cell = 0; cell < gridSize; ++cell) {
                size_t rem = cell;
                for (size_t a = spec.axes.size(); a-- > 0;) {
                    idx[a] = rem % spec.axes[a].second.size();
                    rem /= spec.axes[a].second.size();
                }
                SweepRun run;
                run.workload = workload;
                run.seed = seed;
                std::string axisLabel;
                for (const auto &[bkey, bvalue] : spec.base) {
                    if (!applyConfigKey(run.cfg, bkey, bvalue, error)) {
                        error = "sweep spec: " + error;
                        return false;
                    }
                }
                for (size_t a = 0; a < spec.axes.size(); ++a) {
                    const auto &[akey, avalues] = spec.axes[a];
                    const std::string &avalue = avalues[idx[a]];
                    if (!applyConfigKey(run.cfg, akey, avalue, error)) {
                        error = "sweep spec: " + error;
                        return false;
                    }
                    axisLabel += (a ? "," : "") + akey + "=" + avalue;
                }
                run.cfg.harmonize();
                run.key = workload + "/seed=" + std::to_string(seed);
                if (!axisLabel.empty())
                    run.key += "/" + axisLabel;
                out.push_back(std::move(run));
            }
        }
    }
    return true;
}

SweepJob
makeSimJob(const SweepRun &run)
{
    SweepJob job;
    job.key = run.key;
    // The lambda owns a *copy* of the run: every attempt builds its
    // workload, Simulator, and StatsRegistry from scratch on the
    // worker thread — shared-nothing by construction.
    job.run = [run](const JobContext &ctx) -> JobOutcome {
        JobOutcome out;
        if (ctx.cancelled()) {
            out.error = "cancelled before start";
            return out;
        }
        auto trace = makeWorkload(run.workload, run.seed);
        if (!trace) {
            out.error = "unknown workload '" + run.workload + "'";
            return out;
        }
        Simulator sim(run.cfg, *trace);
        sim.run();
        out.payload = sim.statsJson();
        out.ok = true;
        return out;
    };
    return job;
}

} // namespace psb
