/**
 * @file
 * Declarative sweep specifications for the psb-sweep CLI and the
 * bench harnesses: one JSON document describing a base machine
 * configuration, the axes to vary, the workloads (and seeds) to run
 * them over, and the default worker count. Example:
 *
 *   {
 *     "jobs": 8,
 *     "workloads": ["health", "burg"],
 *     "seeds": [1],
 *     "base": {"insts": 60000, "warmup": 20000, "prefetcher": "psb"},
 *     "axes": {"buffers": [4, 8], "l1d-kb": [16, 32]}
 *   }
 *
 * expandSweepSpec() takes the cartesian product workloads x seeds x
 * axes (axes in spec order, values in spec order) into a flat job
 * list. Config keys are the psb-sim flag names (sim/config.hh
 * applyConfigKey); parsing is strict end to end — unknown top-level
 * sections, unknown config keys, duplicate JSON keys, and a key
 * appearing in both "base" and "axes" are all hard errors.
 *
 * Job keys are "workload/seed=S/axis1=v1,axis2=v2" — unique by
 * construction, and the sort order of the merged document.
 */

#ifndef PSB_SIM_SWEEP_SPEC_HH
#define PSB_SIM_SWEEP_SPEC_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/config.hh"
#include "sim/sweep.hh"

namespace psb
{

/** Parsed but not yet expanded sweep description. */
struct SweepSpec
{
    unsigned jobs = 1; ///< default worker count (CLI --jobs overrides)
    std::vector<std::string> workloads;
    std::vector<uint64_t> seeds{1};
    /** Config key -> value token, in spec order. */
    std::vector<std::pair<std::string, std::string>> base;
    /** Axis key -> value tokens, in spec order. */
    std::vector<std::pair<std::string, std::vector<std::string>>> axes;
};

/**
 * Parse @p text as a sweep spec, strictly (see file comment).
 * @param error Human-readable message when returning false.
 */
bool parseSweepSpec(const std::string &text, SweepSpec &out,
                    std::string &error);

/** One fully resolved simulation the spec asks for. */
struct SweepRun
{
    std::string key; ///< unique job key (see file comment)
    std::string workload;
    uint64_t seed = 1;
    SimConfig cfg; ///< harmonize() already applied
};

/**
 * Expand the spec into the full job grid. Validates every config key
 * and value through applyConfigKey().
 * @param error Set when a key/value is rejected.
 */
bool expandSweepSpec(const SweepSpec &spec, std::vector<SweepRun> &out,
                     std::string &error);

/**
 * Wrap one run as an engine job: instantiate the workload and a
 * fully isolated Simulator + StatsRegistry on the worker thread, run
 * it, and return the deterministic flat stats JSON as the payload.
 */
SweepJob makeSimJob(const SweepRun &run);

} // namespace psb

#endif // PSB_SIM_SWEEP_SPEC_HH
