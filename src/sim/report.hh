/**
 * @file
 * Human-readable summary of a SimResult, used by the examples and for
 * quick interactive inspection. The bench harnesses print the paper's
 * tables themselves from the raw fields.
 */

#ifndef PSB_SIM_REPORT_HH
#define PSB_SIM_REPORT_HH

#include <string>

#include "sim/simulator.hh"

namespace psb
{

/** Render a multi-line textual report for one simulation result. */
std::string formatReport(const std::string &title, const SimResult &r);

/** Print the report to stdout. */
void printReport(const std::string &title, const SimResult &r);

/**
 * Render every stat in the registry, one aligned "path value" line
 * per stat in sorted path order. The values are spelled exactly as in
 * the JSON export so the two render the same numbers.
 */
std::string formatStatsReport(const std::string &title,
                              const StatsRegistry &reg);

} // namespace psb

#endif // PSB_SIM_REPORT_HH
