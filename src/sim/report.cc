#include "sim/report.hh"

#include <cstdio>
#include <sstream>

#include "util/stats_json.hh"

namespace psb
{

std::string
formatReport(const std::string &title, const SimResult &r)
{
    char buf[256];
    std::ostringstream out;
    out << "=== " << title << " ===\n";

    auto line = [&](const char *fmt, auto... args) {
        std::snprintf(buf, sizeof(buf), fmt, args...);
        out << "  " << buf << "\n";
    };

    line("instructions      %llu",
         (unsigned long long)r.core.instructions);
    line("cycles            %llu", (unsigned long long)r.core.cycles);
    line("IPC               %.3f", r.ipc);
    line("loads / stores    %.1f%% / %.1f%%", r.pctLoads, r.pctStores);
    line("L1D miss rate     %.4f (in-flight counted as miss)",
         r.l1dMissRate);
    line("avg load latency  %.2f cycles", r.avgLoadLatency);
    line("branch mispredict %llu of %llu",
         (unsigned long long)r.core.mispredicts,
         (unsigned long long)r.core.branches);
    line("L1-L2 bus util    %.1f%%", 100.0 * r.l1L2BusUtil);
    line("L2-mem bus util   %.1f%%", 100.0 * r.l2MemBusUtil);
    if (r.prefetch.prefetchesIssued > 0) {
        line("prefetches        %llu issued, %llu used (%.1f%% accuracy)",
             (unsigned long long)r.prefetch.prefetchesIssued,
             (unsigned long long)r.prefetch.prefetchesUsed,
             100.0 * r.prefetchAccuracy);
        line("SB hits           %llu of %llu L1D misses serviced",
             (unsigned long long)r.core.sbServiced,
             (unsigned long long)r.core.l1dMisses);
        line("allocations       %llu of %llu requests",
             (unsigned long long)r.prefetch.allocations,
             (unsigned long long)r.prefetch.allocationRequests);
    }
    return out.str();
}

void
printReport(const std::string &title, const SimResult &r)
{
    std::fputs(formatReport(title, r).c_str(), stdout);
}

std::string
formatStatsReport(const std::string &title, const StatsRegistry &reg)
{
    auto snapshot = reg.snapshot();

    size_t width = 0;
    for (const auto &[path, value] : snapshot) {
        (void)value;
        if (path.size() > width)
            width = path.size();
    }

    std::ostringstream out;
    out << "=== " << title << " ===\n";
    for (const auto &[path, value] : snapshot) {
        out << "  " << path
            << std::string(width - path.size() + 2, ' ');
        if (value.kind == StatValue::Kind::Scalar) {
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%llu",
                          (unsigned long long)value.scalar);
            out << buf;
        } else {
            out << formatStatReal(value.real);
        }
        out << "\n";
    }
    return out.str();
}

} // namespace psb
