/**
 * @file
 * The top-level simulator: assembles memory hierarchy, predictor,
 * prefetcher, and out-of-order core around a trace source, runs the
 * warm-up and measurement phases, and collects a SimResult with every
 * number the paper's tables and figures report.
 */

#ifndef PSB_SIM_SIMULATOR_HH
#define PSB_SIM_SIMULATOR_HH

#include <functional>
#include <memory>
#include <string>

#include "sim/config.hh"
#include "sim/interval_stats.hh"
#include "trace/trace_source.hh"
#include "util/hot_path.hh"
#include "util/stats.hh"

namespace psb
{

/**
 * Everything the bench harnesses read out of one simulation.
 *
 * This is a thin copied-out view over the stats registry: every field
 * here is also registered under a stable dotted path (core.*, l1d.*,
 * l2.*, bus.*, the prefetcher's prefix, sim.*) and exported by
 * Simulator::statsJson(); the struct remains for the bench harnesses
 * that index fields directly.
 */
struct SimResult
{
    CoreStats core;
    HierarchyStats memory;
    PrefetcherStats prefetch;

    uint64_t tlbMisses = 0;

    double ipc = 0.0;
    double l1dMissRate = 0.0;       ///< in-flight counts as miss (§6)
    double avgLoadLatency = 0.0;    ///< Figure 8
    double prefetchAccuracy = 0.0;  ///< Figure 6
    double l1L2BusUtil = 0.0;       ///< Figure 9, left axis
    double l2MemBusUtil = 0.0;      ///< Figure 9, right axis
    double pctLoads = 0.0;          ///< Table 2
    double pctStores = 0.0;         ///< Table 2
};

/** See file comment. */
class Simulator
{
  public:
    /**
     * @param cfg Machine configuration (harmonize() is applied).
     * @param trace Instruction stream to execute (not owned).
     */
    Simulator(const SimConfig &cfg, TraceSource &trace);
    ~Simulator();

    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /**
     * Run warm-up (stats discarded) then the measurement region.
     * @return Aggregated results of the measurement region.
     */
    SimResult run();

    /**
     * Observe the committed L1D load-miss stream (PC, address) during
     * run(); used by the Figure 4 harness to analyse Markov deltas.
     */
    void setMissHook(std::function<void(Addr, Addr)> hook);

    MemoryHierarchy &hierarchy() { return *_hierarchy; }
    Prefetcher &prefetcher() { return *_prefetcher; }
    OoOCore &core() { return *_core; }
    const SimConfig &config() const { return _cfg; }

    /** Every component's stats, registered at construction. */
    const StatsRegistry &statsRegistry() const { return _registry; }

    /**
     * Emit one interval-stats JSONL record to @p out every @p period
     * measured cycles (see sim/interval_stats.hh). Call before run();
     * @p out must outlive the run.
     */
    void setIntervalStats(uint64_t period, std::ostream &out);

    /**
     * Deterministic flat-JSON dump of every registered stat (sorted
     * keys, fixed float formatting). Byte-identical across runs with
     * the same configuration and seed.
     */
    std::string statsJson() const { return _registry.toJson(); }

  private:
    void resetAllStats();
    void buildStatsRegistry();

    /**
     * One simulated cycle: optional exact fast-forward, core tick,
     * prefetcher tick, clock advance. This is the per-cycle hot-path
     * root — everything reachable from here must satisfy R10–R12
     * (no allocation, no throw, devirtualizable dispatch).
     */
    PSB_HOT_PATH void stepCycle();

    void maybeFastForward();
    SimResult gather() const;

    SimConfig _cfg;
    StatsRegistry _registry;
    std::unique_ptr<MemoryHierarchy> _hierarchy;
    std::unique_ptr<AddressPredictor> _predictor; ///< PSB kind only
    std::unique_ptr<Prefetcher> _prefetcher;
    std::unique_ptr<Prefetcher> _hookWrapper;
    std::unique_ptr<OoOCore> _core;
    std::function<void(Addr, Addr)> _missHook;
    std::unique_ptr<IntervalStatsWriter> _intervalStats;
    Cycle _now{};
};

} // namespace psb

#endif // PSB_SIM_SIMULATOR_HH
