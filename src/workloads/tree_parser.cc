#include "workloads/tree_parser.hh"

#include "util/logging.hh"

namespace psb
{

TreeParser::TreeParser() : TreeParser(Params{}) {}

TreeParser::TreeParser(const Params &params)
    : _params(params),
      _heap(Addr{0x20000000}, /*scatter_blocks=*/32, params.seed),
      _rng(params.seed * 0x51ed + 3)
{
    _frame = _heap.alloc(256, 64);
    _grammar = _heap.alloc(_params.grammarBytes, 64);
    _ruleTable = _heap.alloc(_params.ruleTableBytes, 64);
    _forest.resize(_params.numTrees);
    for (auto &tree : _forest)
        buildTree(tree);
}

void
TreeParser::buildTree(Tree &tree)
{
    tree.nodes.reserve(_params.nodesPerTree);
    tree.nodes.push_back(Node{_heap.alloc(nodeBytes, 32), -1, -1});

    // Grow by attaching to random leaves/one-child nodes so the shape
    // varies per tree while staying binary.
    while (tree.nodes.size() < _params.nodesPerTree) {
        unsigned parent = unsigned(_rng.below(tree.nodes.size()));
        Node &p = tree.nodes[parent];
        if (p.left >= 0 && p.right >= 0)
            continue;
        Node child{_heap.alloc(nodeBytes, 32), -1, -1};
        tree.nodes.push_back(child);
        int idx = int(tree.nodes.size()) - 1;
        if (p.left < 0)
            p.left = idx;
        else
            p.right = idx;
    }

    // Iterative post-order over node indices, fixed per tree.
    std::vector<int> stack{0};
    std::vector<int> order;
    while (!stack.empty()) {
        int n = stack.back();
        stack.pop_back();
        order.push_back(n);
        if (tree.nodes[n].left >= 0)
            stack.push_back(tree.nodes[n].left);
        if (tree.nodes[n].right >= 0)
            stack.push_back(tree.nodes[n].right);
    }
    tree.postorder.assign(order.rbegin(), order.rend());
}

void
TreeParser::labelNode(const Tree &tree, int n)
{
    constexpr uint8_t r_node = 1;
    constexpr uint8_t r_left = 2;
    constexpr uint8_t r_right = 3;
    constexpr uint8_t r_rule = 4;
    constexpr uint8_t r_state = 5;

    const Node &node = tree.nodes[size_t(n)];

    // Load the two child pointers (dependent on the node pointer) and
    // each child's previously computed state.
    emitLoad(pcBase + 0x00, r_left, node.addr + 0, r_node);
    emitLoad(pcBase + 0x04, r_right, node.addr + 8, r_node);
    if (node.left >= 0) {
        emitLoad(pcBase + 0x08, r_left,
                 tree.nodes[size_t(node.left)].addr + 24, r_left);
    }
    if (node.right >= 0) {
        emitLoad(pcBase + 0x0c, r_right,
                 tree.nodes[size_t(node.right)].addr + 24, r_right);
    }

    // Combine child states into a rule-table index; the table is hot
    // and mostly L1-resident.
    emitAlu(pcBase + 0x10, r_state, r_left, r_right);
    Addr rule_slot = _ruleTable +
        (_rng.next() & (_params.ruleTableBytes - 1) & ~uint64_t(7));
    emitLoad(pcBase + 0x14, r_rule, rule_slot, r_state);
    emitAlu(pcBase + 0x18, r_state, r_rule, r_state);
    // Locals of the labelling routine: hot, L1-resident.
    emitLoad(pcBase + 0x1c, r_rule, _frame + 8 * (unsigned(n) & 7),
             r_rule);
    emitAlu(pcBase + 0x50, r_state, r_state, r_rule);
    emitStore(pcBase + 0x54, _frame + 8 * (unsigned(n) & 7), r_state,
              r_rule);
    emitAlu(pcBase + 0x58, r_state, r_state);

    // Write the node's label (its state) back.
    emitStore(pcBase + 0x20, node.addr + 24, r_state, r_node);
    emitBranch(pcBase + 0x24, n != tree.postorder.back(),
               pcBase + 0x00, r_state);
}

bool
TreeParser::step()
{
    const Tree &tree = _forest[_treeCursor];
    labelNode(tree, tree.postorder[_nodeCursor]);

    // Every few nodes, scan a run of the grammar tables: sequential,
    // stride-predictable pressure standing in for the rule data the
    // real generator streams through.
    if ((_nodeCursor & 3) == 0) {
        constexpr uint8_t r_g = 7;
        constexpr uint8_t r_h = 8;
        for (unsigned off = 0; off < 128; off += 32) {
            Addr rec = _grammar +
                ((_grammarCursor + off) % _params.grammarBytes);
            emitLoad(pcBase + 0x60, r_g, rec, r_h);
            emitAlu(pcBase + 0x64, r_h, r_h, r_g);
            emitBranch(pcBase + 0x68, off + 32 < 128, pcBase + 0x60,
                       r_h);
        }
        _grammarCursor = (_grammarCursor + 128) % _params.grammarBytes;
    }
    if (++_nodeCursor >= tree.postorder.size()) {
        _nodeCursor = 0;
        _treeCursor = (_treeCursor + 1) % _forest.size();
        emitAlu(pcBase + 0x30, 6);
        emitBranch(pcBase + 0x34, true, pcBase + 0x00, 6);
    }
    return true;
}

} // namespace psb
