#include "workloads/constraint_solver.hh"

#include <utility>
#include <vector>

#include "util/logging.hh"

namespace psb
{

ConstraintSolver::ConstraintSolver() : ConstraintSolver(Params{}) {}

ConstraintSolver::ConstraintSolver(const Params &params)
    : _params(params),
      _heap(Addr{0x30000000}, /*scatter_blocks=*/40, params.seed),
      _rng(params.seed * 0xdb1u + 7)
{
    _frame = _heap.alloc(256, 64);
    _plan = _heap.alloc(_params.planBytes, 64);
    _variables.resize(_params.numVariables);
    for (auto &v : _variables)
        v.addr = _heap.alloc(variableBytes, 32);

    // Fixed chains partitioning the variables: the dataflow paths the
    // solver repeatedly propagates along. Each variable sits at one
    // chain position (a variable has one determining constraint), so
    // every block has a single successor in the walk — the stable,
    // recurring, non-strided miss sequence a Markov predictor learns.
    std::vector<unsigned> order(_variables.size());
    for (unsigned i = 0; i < order.size(); ++i)
        order[i] = i;
    for (size_t i = order.size(); i > 1; --i)
        std::swap(order[i - 1], order[_rng.below(i)]);

    unsigned num_chains = _params.numVariables / _params.chainLength;
    if (num_chains == 0)
        num_chains = 1;
    _chains.resize(num_chains);
    size_t pos = 0;
    for (auto &chain : _chains) {
        chain.reserve(_params.chainLength);
        for (unsigned i = 0;
             i < _params.chainLength && pos < order.size(); ++i)
            chain.push_back(order[pos++]);
    }
}

void
ConstraintSolver::allocBatch()
{
    constexpr uint8_t r_obj = 1;
    constexpr uint8_t r_tmp = 2;

    // new Constraint(...) x batch: short-lived heap objects. The heap
    // free list recycles last round's addresses.
    for (unsigned i = 0; i < _params.batchConstraints; ++i) {
        Constraint c;
        c.addr = _heap.alloc(constraintBytes, 32);
        _batch.push_back(c);
        emitAlu(pcBase + 0x00, r_obj);
        emitStore(pcBase + 0x04, c.addr + 0, r_obj, r_obj);
        emitStore(pcBase + 0x08, c.addr + 8, r_tmp, r_obj);
        emitStore(pcBase + 0x0c, c.addr + 24, r_tmp, r_obj);
        emitAlu(pcBase + 0x10, r_tmp, r_obj);
        emitBranch(pcBase + 0x14, i + 1 < _params.batchConstraints,
                   pcBase + 0x00, r_tmp);
    }
}

void
ConstraintSolver::propagateOne()
{
    constexpr uint8_t r_var = 1;
    constexpr uint8_t r_cons = 2;
    constexpr uint8_t r_val = 3;
    constexpr uint8_t r_strength = 4;

    const auto &chain = _chains[_chainCursor];
    const Variable &var = _variables[chain[_posInChain]];
    const Constraint &cons =
        _batch[_posInChain % _batch.size()];

    // Walk: load the variable's determining constraint pointer and
    // its walk-strength record (the second block of the 96-byte
    // variable object), the constraint's strength and method,
    // compute, store the new value. The chain is serialised through
    // r_var, like the real solver's var->determinedBy->output walk.
    emitLoad(pcBase + 0x20, r_var, var.addr + 0, r_var);
    emitLoad(pcBase + 0x24, r_cons, cons.addr + 8, r_var);
    emitLoad(pcBase + 0x28, r_strength, var.addr + 40, r_var);
    emitAlu(pcBase + 0x2c, r_val, r_cons, r_strength);
    emitAlu(pcBase + 0x30, r_val, r_val);
    emitStore(pcBase + 0x34, var.addr + 16, r_val, r_var);
    emitLoad(pcBase + 0x38, r_strength,
             _frame + 8 * (unsigned(_posInChain) & 7), r_strength);
    emitAlu(pcBase + 0x3c, r_strength, r_strength, r_val);
    emitStore(pcBase + 0x50,
              _frame + 8 * (unsigned(_posInChain) & 7), r_strength,
              r_val);
    emitAlu(pcBase + 0x54, r_strength, r_val);
    emitBranch(pcBase + 0x58, _posInChain + 1 < chain.size(),
               pcBase + 0x20, r_val);
}

void
ConstraintSolver::writePlan()
{
    constexpr uint8_t r_p = 5;
    constexpr uint8_t r_q = 6;
    // Extracting the execution plan: a long sequential write sweep —
    // the bandwidth-heavy, stride-predictable half of deltablue that
    // makes it the paper's largest L1-L2 bus consumer.
    constexpr unsigned sweep_bytes = 2048;
    for (unsigned off = 0; off < sweep_bytes; off += 32) {
        Addr rec = _plan + ((_planCursor + off) % _params.planBytes);
        emitLoad(pcBase + 0x60, r_p, rec, r_q);
        emitAlu(pcBase + 0x64, r_q, r_q, r_p);
        emitStore(pcBase + 0x68, rec, r_q, r_p);
        emitBranch(pcBase + 0x6c, off + 32 < sweep_bytes,
                   pcBase + 0x60, r_q);
    }
    _planCursor = (_planCursor + sweep_bytes) % _params.planBytes;
}

void
ConstraintSolver::retractBatch()
{
    constexpr uint8_t r_obj = 1;

    // destroy the batch: one final touch per object, then free. The
    // freed addresses come back next round (LIFO), so the allocation
    // stores and these loads form the recycled-address pattern.
    for (size_t i = _batch.size(); i-- > 0;) {
        emitLoad(pcBase + 0x40, r_obj, _batch[i].addr + 0, r_obj);
        _heap.free(_batch[i].addr, constraintBytes);
        emitBranch(pcBase + 0x44, i != 0, pcBase + 0x40, r_obj);
    }
    _batch.clear();
}

bool
ConstraintSolver::step()
{
    switch (_phase) {
      case Phase::Alloc:
        allocBatch();
        _phase = Phase::Propagate;
        _posInChain = 0;
        break;
      case Phase::Propagate:
        propagateOne();
        if (++_posInChain >= _chains[_chainCursor].size())
            _phase = Phase::Retract;
        break;
      case Phase::Retract:
        writePlan();
        retractBatch();
        _chainCursor = (_chainCursor + 1) % _chains.size();
        _phase = Phase::Alloc;
        break;
    }
    return true;
}

} // namespace psb
