#include "workloads/server_workloads.hh"

namespace psb
{

namespace
{

/** splitmix64-style stateless mix for derived keys and hashes. */
uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

// ------------------------------------------------------------------ //
// GraphTraversal ("graph")
// ------------------------------------------------------------------ //

GraphTraversal::GraphTraversal() : GraphTraversal(Params{}) {}

GraphTraversal::GraphTraversal(const Params &params)
    : _params(params),
      _heap(Addr{0x30000000}),
      _rng(params.seed * 0x9e37 + 0x6af1)
{
    unsigned v_count = _params.vertices;
    _rowPtr.reserve(v_count + 1);
    _rowPtr.push_back(0);
    for (unsigned v = 0; v < v_count; ++v) {
        unsigned degree =
            _params.minDegree +
            unsigned(_rng.below(_params.maxDegree - _params.minDegree +
                                1));
        for (unsigned e = 0; e < degree; ++e)
            _colIdx.push_back(unsigned(_rng.below(v_count)));
        _rowPtr.push_back(unsigned(_colIdx.size()));
    }
    _visitedPass.assign(v_count, 0);

    _rowPtrAddr = _heap.alloc((uint64_t(v_count) + 1) * 8, 64);
    _colIdxAddr = _heap.alloc(uint64_t(_colIdx.size()) * 8, 64);
    _vdataAddr = _heap.alloc(uint64_t(v_count) * vdataBytes, 64);
    _visitedAddr = _heap.alloc(uint64_t(v_count) * 8, 64);
    _queueAddr = _heap.alloc(uint64_t(v_count) * 8, 64);

    _queue.reserve(v_count);
    startPass();
}

void
GraphTraversal::enqueue(unsigned v)
{
    _visitedPass[v] = _pass;
    _queue.push_back(v);
}

void
GraphTraversal::startPass()
{
    ++_pass;
    _queue.clear();
    _head = 0;
    _nextRoot = 0;
    // Roots rotate across passes so the BFS tree (and therefore the
    // discovery order the prefetchers can learn) mutates slowly.
    enqueue(unsigned((_pass - 1) % _params.vertices));
}

bool
GraphTraversal::step()
{
    constexpr uint8_t r_queue = 1;
    constexpr uint8_t r_vertex = 2;
    constexpr uint8_t r_row = 3;
    constexpr uint8_t r_edge = 4;
    constexpr uint8_t r_flag = 5;
    constexpr uint8_t r_acc = 6;

    if (_head >= _queue.size()) {
        // Queue drained: scan the visited array for the next
        // untouched component, one probe per step.
        while (_nextRoot < _params.vertices) {
            unsigned v = _nextRoot++;
            emitLoad(pcBase + 0x80, r_flag, _visitedAddr + v * 8u,
                     r_vertex);
            emitAlu(pcBase + 0x84, r_acc, r_acc, r_flag);
            emitBranch(pcBase + 0x88, _visitedPass[v] != _pass,
                       pcBase + 0x00, r_flag);
            if (_visitedPass[v] != _pass) {
                enqueue(v);
                emitStore(pcBase + 0x8c, _visitedAddr + v * 8u, r_flag,
                          r_vertex);
                emitStore(pcBase + 0x90,
                          _queueAddr + (_queue.size() - 1) * 8, r_vertex,
                          r_queue);
                return true;
            }
        }
        startPass();
        return true;
    }

    // Dequeue: the queue itself is an in-memory ring, read with a
    // unit stride.
    unsigned v = _queue[_head];
    emitLoad(pcBase + 0x00, r_vertex, _queueAddr + _head * 8, r_queue);
    ++_head;

    // Row bounds: two adjacent sequential loads.
    emitLoad(pcBase + 0x04, r_row, _rowPtrAddr + v * 8u, r_vertex);
    emitLoad(pcBase + 0x08, r_edge, _rowPtrAddr + (v + 1) * 8u,
             r_vertex);
    emitAlu(pcBase + 0x0c, r_acc, r_row, r_edge);
    emitBranch(pcBase + 0x10, _rowPtr[v] != _rowPtr[v + 1],
               pcBase + 0x14, r_acc);

    for (unsigned e = _rowPtr[v]; e < _rowPtr[v + 1]; ++e) {
        unsigned u = _colIdx[e];
        // Adjacency scan: unit-stride over colIdx...
        emitLoad(pcBase + 0x14, r_edge, _colIdxAddr + uint64_t(e) * 8,
                 r_row);
        emitAlu(pcBase + 0x18, r_acc, r_acc, r_edge);
        // ...feeding data-dependent gathers: the visited flag and the
        // 64-byte vertex record, both indexed by the loaded neighbor.
        emitLoad(pcBase + 0x1c, r_flag, _visitedAddr + u * 8u, r_edge);
        emitAlu(pcBase + 0x20, r_acc, r_acc, r_flag);
        emitBranch(pcBase + 0x24, _visitedPass[u] == _pass,
                   pcBase + 0x14, r_flag);
        if (_visitedPass[u] != _pass) {
            enqueue(u);
            emitLoad(pcBase + 0x28, r_acc,
                     _vdataAddr + uint64_t(u) * vdataBytes, r_edge);
            emitAlu(pcBase + 0x2c, r_acc, r_acc);
            emitStore(pcBase + 0x30, _visitedAddr + u * 8u, r_flag,
                      r_edge);
            emitStore(pcBase + 0x34,
                      _queueAddr + (_queue.size() - 1) * 8, r_edge,
                      r_queue);
        }
    }

    emitAlu(pcBase + 0x38, r_acc, r_acc);
    emitBranch(pcBase + 0x3c, true, pcBase + 0x00, r_acc);
    return true;
}

// ------------------------------------------------------------------ //
// HashJoin ("hashjoin")
// ------------------------------------------------------------------ //

HashJoin::HashJoin() : HashJoin(Params{}) {}

HashJoin::HashJoin(const Params &params)
    : _params(params),
      // Build-side nodes are scatter-allocated: bucket chains have no
      // usable stride, like a heap-built hash table after churn.
      _heap(Addr{0x40000000}, /*scatter_blocks=*/64, params.seed),
      _rng(params.seed * 0x9e37 + 0x70b3)
{
    _bucketAddr = _heap.alloc(uint64_t(_params.buckets) * 8, 64);
    _probeAddr =
        _heap.alloc(uint64_t(_params.probeRows) * probeRowBytes, 64);
    _outputAddr = _heap.alloc(outputRingBytes, 64);

    // Dense build keys 0..buildRows-1: with buckets = buildRows/2 the
    // chains are short and every probe key in range matches.
    _bucketHead.assign(_params.buckets, -1);
    _nodes.reserve(_params.buildRows);
    for (unsigned row = 0; row < _params.buildRows; ++row) {
        Node node;
        node.addr = _heap.alloc(nodeBytes, 64);
        node.key = row;
        unsigned h = row % _params.buckets;
        node.next = _bucketHead[h];
        _bucketHead[h] = int(row);
        _nodes.push_back(node);
    }
}

bool
HashJoin::step()
{
    constexpr uint8_t r_probe = 1;
    constexpr uint8_t r_key = 2;
    constexpr uint8_t r_hash = 3;
    constexpr uint8_t r_node = 4;
    constexpr uint8_t r_val = 5;
    constexpr uint8_t r_acc = 6;

    // The probe relation is a ring: every lap replays the same key
    // sequence, so the chain walks recur exactly — the behaviour a
    // Markov predictor can exploit and a stride table cannot.
    uint64_t row = _probeCursor % _params.probeRows;
    uint64_t key = mix64(row * 0x100 + _params.seed) %
                   (uint64_t(_params.buildRows) * 2);
    ++_probeCursor;

    // Sequential scan of the probe relation (32-byte rows).
    emitLoad(pcBase + 0x00, r_key, _probeAddr + row * probeRowBytes,
             r_probe);
    emitAlu(pcBase + 0x04, r_hash, r_key);
    emitAlu(pcBase + 0x08, r_hash, r_hash, r_key);
    emitAlu(pcBase + 0x0c, r_hash, r_hash);

    // Bucket-head gather, indexed by the computed hash.
    unsigned h = unsigned(key % _params.buckets);
    emitLoad(pcBase + 0x10, r_node, _bucketAddr + h * 8u, r_hash);
    emitBranch(pcBase + 0x14, _bucketHead[h] >= 0, pcBase + 0x18,
               r_node);

    // Chain walk: serialised loads through the node next pointers.
    int node = _bucketHead[h];
    bool matched = false;
    while (node >= 0) {
        const Node &rec = _nodes[size_t(node)];
        emitLoad(pcBase + 0x18, r_node, rec.addr + 0, r_node);
        emitAlu(pcBase + 0x1c, r_acc, r_key, r_node);
        emitBranch(pcBase + 0x20, rec.key == key, pcBase + 0x18,
                   r_node);
        if (rec.key == key) {
            matched = true;
            // Payload fetch + append to the sequential output ring.
            emitLoad(pcBase + 0x24, r_val, rec.addr + 8, r_node);
            emitAlu(pcBase + 0x28, r_acc, r_acc, r_val);
            emitStore(pcBase + 0x2c,
                      _outputAddr +
                          (_outputCursor % (outputRingBytes / 8)) * 8,
                      r_acc, r_acc);
            ++_outputCursor;
            break;
        }
        node = rec.next;
    }

    emitAlu(pcBase + 0x30, r_acc, r_acc);
    emitBranch(pcBase + 0x34, matched, pcBase + 0x00, r_acc);
    return true;
}

// ------------------------------------------------------------------ //
// LogStructured ("logscan")
// ------------------------------------------------------------------ //

LogStructured::LogStructured() : LogStructured(Params{}) {}

LogStructured::LogStructured(const Params &params)
    : _params(params),
      _heap(Addr{0x50000000}),
      _rng(params.seed * 0x9e37 + 0x109c)
{
    _logRecords = uint64_t(_params.logKb) * 1024 / recordBytes;
    _logAddr = _heap.alloc(_logRecords * recordBytes, 64);
    _indexAddr = _heap.alloc(uint64_t(_params.indexBuckets) * 8, 64);
    _frameAddr = _heap.alloc(256, 64);
    // The scan trails the append head by a fixed lag, re-reading
    // records while they are still L2-resident.
    _appendCursor = _params.scanLag;
}

Addr
LogStructured::recordAddr(uint64_t record) const
{
    return _logAddr + (record % _logRecords) * recordBytes;
}

bool
LogStructured::step()
{
    constexpr uint8_t r_head = 1;
    constexpr uint8_t r_rec = 2;
    constexpr uint8_t r_idx = 3;
    constexpr uint8_t r_val = 4;
    constexpr uint8_t r_acc = 5;

    // Append two records at the log head: sequential stores plus a
    // scattered read-modify-write of the index bucket.
    for (unsigned k = 0; k < 2; ++k) {
        uint64_t rec = _appendCursor++;
        unsigned h = unsigned(mix64(rec) % _params.indexBuckets);
        emitAlu(pcBase + 0x00, r_rec, r_head);
        emitStore(pcBase + 0x04, recordAddr(rec), r_rec, r_head);
        emitAlu(pcBase + 0x08, r_idx, r_rec);
        emitLoad(pcBase + 0x0c, r_val, _indexAddr + h * 8u, r_idx);
        emitAlu(pcBase + 0x10, r_val, r_val, r_rec);
        emitStore(pcBase + 0x14, _indexAddr + h * 8u, r_val, r_idx);
        emitBranch(pcBase + 0x18, k == 0, pcBase + 0x00, r_val);
    }

    // Point query of a recently appended record through the index:
    // index probe then a data-dependent load into the log.
    uint64_t window = _appendCursor < 4096 ? _appendCursor : 4096;
    uint64_t rec = _appendCursor - 1 - _rng.below(window);
    unsigned qh = unsigned(mix64(rec) % _params.indexBuckets);
    emitLoad(pcBase + 0x20, r_idx, _indexAddr + qh * 8u, r_acc);
    emitLoad(pcBase + 0x24, r_val, recordAddr(rec), r_idx);
    emitAlu(pcBase + 0x28, r_acc, r_acc, r_val);
    emitBranch(pcBase + 0x2c, (rec & 1) != 0, pcBase + 0x20, r_val);

    // Lagging segment scan: eight sequential record reads.
    for (unsigned k = 0; k < 8; ++k) {
        emitLoad(pcBase + 0x30, r_val, recordAddr(_scanCursor), r_rec);
        emitAlu(pcBase + 0x34, r_acc, r_acc, r_val);
        if ((k & 3) == 3)
            emitBranch(pcBase + 0x38, k < 7, pcBase + 0x30, r_val);
        ++_scanCursor;
    }

    emitAlu(pcBase + 0x3c, r_acc, r_acc);
    emitStore(pcBase + 0x40, _frameAddr + 8 * (_scanCursor & 7), r_acc,
              r_acc);
    emitBranch(pcBase + 0x44, true, pcBase + 0x00, r_acc);
    return true;
}

} // namespace psb
