/**
 * @file
 * Analog of "burg" (a BURS tree-parser generator run on a VAX
 * grammar): builds a forest of expression trees once, then repeatedly
 * labels them — a post-order walk loading each node's child pointers
 * and consulting a rule table to compute and store the node's state.
 *
 * Behavioural properties preserved:
 *  - recursive-data-structure traversal with scatter-allocated nodes
 *    (no stride), repeated identically every pass (Markov-friendly);
 *  - a hot rule table small enough to live mostly in the L1, so the
 *    miss stream is dominated by the tree nodes;
 *  - a moderate store fraction (every node's label is written back).
 */

#ifndef PSB_WORKLOADS_TREE_PARSER_HH
#define PSB_WORKLOADS_TREE_PARSER_HH

#include <cstdint>
#include <vector>

#include "workloads/workload.hh"

namespace psb
{

/** See file comment. */
class TreeParser : public Workload
{
  public:
    /** Sizing knobs (defaults give a ~600 KB forest). */
    struct Params
    {
        unsigned numTrees = 8;
        unsigned nodesPerTree = 100;
        unsigned ruleTableBytes = 16 * 1024;
        unsigned grammarBytes = 192 * 1024; ///< grammar data, swept
        uint64_t seed = 1;
    };

    TreeParser();
    explicit TreeParser(const Params &params);

    const char *name() const override { return "burg"; }

  protected:
    bool step() override;

  private:
    struct Node
    {
        Addr addr{};
        int left = -1;
        int right = -1;
    };

    struct Tree
    {
        std::vector<Node> nodes;
        std::vector<int> postorder;
    };

    void buildTree(Tree &tree);
    void labelNode(const Tree &tree, int n);

    Params _params;
    SyntheticHeap _heap;
    Xorshift64 _rng;
    std::vector<Tree> _forest;
    Addr _ruleTable{};
    size_t _treeCursor = 0;
    size_t _nodeCursor = 0;
    Addr _frame{}; ///< hot activation record, L1-resident
    Addr _grammar{}; ///< cold grammar tables, swept strided
    uint64_t _grammarCursor = 0;

    static constexpr Addr pcBase{0x00500000};
    static constexpr unsigned nodeBytes = 40;
};

} // namespace psb

#endif // PSB_WORKLOADS_TREE_PARSER_HH
