/**
 * @file
 * Analog of "gs" (Ghostscript converting a PostScript file to JPEG):
 * a bytecode interpreter. The program text is scanned sequentially
 * (strided at block granularity), each operation manipulates an
 * operand stack (hot, L1-resident), name lookups hash into a large
 * dictionary (recurrent but non-strided misses), and periodically a
 * rasteriser pass sweeps image rows (long unit strides).
 *
 * Behavioural properties preserved:
 *  - a genuine mixture: part of the miss stream is stride-predictable
 *    (program text, image rows) and part needs the Markov table
 *    (dictionary probes), so gs benefits from PSB moderately — more
 *    than turb3d, less than the pure pointer chasers;
 *  - indirect-dispatch branches with moderate predictability.
 */

#ifndef PSB_WORKLOADS_INTERPRETER_HH
#define PSB_WORKLOADS_INTERPRETER_HH

#include <cstdint>
#include <vector>

#include "workloads/workload.hh"

namespace psb
{

/** See file comment. */
class Interpreter : public Workload
{
  public:
    /** Sizing knobs (defaults give a ~900 KB working set). */
    struct Params
    {
        unsigned programBytes = 96 * 1024;
        unsigned dictionaryBytes = 256 * 1024;
        unsigned imageRowBytes = 8 * 1024;
        unsigned opsPerRaster = 600; ///< interpreter ops between rows
        uint64_t seed = 1;
    };

    Interpreter();
    explicit Interpreter(const Params &params);

    const char *name() const override { return "gs"; }

  protected:
    bool step() override;

  private:
    void interpretOne();
    void rasterRow();

    Params _params;
    SyntheticHeap _heap;
    Xorshift64 _rng;
    Addr _program{};
    Addr _dictionary{};
    Addr _image{};
    Addr _stackBase{};
    uint64_t _pcOffset = 0;   ///< interpreter program counter
    unsigned _stackDepth = 0;
    unsigned _sinceRaster = 0;
    unsigned _row = 0;
    uint64_t _dictState = 0;  ///< deterministic hash state

    static constexpr Addr pcBase{0x00700000};
    static constexpr unsigned imageRows = 24;
};

} // namespace psb

#endif // PSB_WORKLOADS_INTERPRETER_HH
