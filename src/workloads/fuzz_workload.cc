#include "workloads/fuzz_workload.hh"

#include <algorithm>

#include "util/json.hh"

namespace psb
{

// ------------------------------------------------------------------ //
// Spec: derivation, canonical emission, strict parsing
// ------------------------------------------------------------------ //

FuzzSpec
FuzzSpec::fromSeed(uint64_t seed)
{
    // A distinct stream from the workload's own PRNG, so spec shape
    // and access randomness cannot cancel each other out.
    Xorshift64 rng(seed * 0x9e3779b97f4a7c15ull + 0x5eed);
    FuzzSpec spec;
    spec.seed = seed;
    spec.footprintKb = 128u << rng.below(3); // 128 / 256 / 512
    spec.phaseLen = 1024u << rng.below(3);   // 1024 / 2048 / 4096
    spec.phases.clear();
    unsigned nPhases = 1 + unsigned(rng.below(3));
    for (unsigned p = 0; p < nPhases; ++p) {
        // Every pattern stays live (weight >= 1): derived scenarios
        // always exercise all four generators, so the structural
        // workload tests hold for any seed.
        FuzzPhase phase;
        phase.stride = 1 + uint32_t(rng.below(7));
        phase.chase = 1 + uint32_t(rng.below(7));
        phase.markov = 1 + uint32_t(rng.below(7));
        phase.scatter = 1 + uint32_t(rng.below(7));
        spec.phases.push_back(phase);
    }
    return spec;
}

std::string
FuzzSpec::toJson() const
{
    // One canonical spelling: fixed key order, two-space indent,
    // phases one object per line. parseFuzzSpec(toJson()) == *this and
    // re-emitting parses byte-identically (tested).
    std::string out;
    out += "{\n";
    out += "  \"seed\": " + std::to_string(seed) + ",\n";
    out += "  \"footprint-kb\": " + std::to_string(footprintKb) + ",\n";
    out += "  \"phase-len\": " + std::to_string(phaseLen) + ",\n";
    out += "  \"phases\": [\n";
    for (size_t p = 0; p < phases.size(); ++p) {
        const FuzzPhase &ph = phases[p];
        out += "    {\"stride\": " + std::to_string(ph.stride) +
               ", \"chase\": " + std::to_string(ph.chase) +
               ", \"markov\": " + std::to_string(ph.markov) +
               ", \"scatter\": " + std::to_string(ph.scatter) + "}";
        out += p + 1 < phases.size() ? ",\n" : "\n";
    }
    out += "  ]\n";
    out += "}\n";
    return out;
}

namespace
{

bool
specError(std::string &error, const std::string &msg)
{
    error = "fuzz spec: " + msg;
    return false;
}

bool
parseWeight(const JsonValue &value, const std::string &key,
            uint32_t &out, std::string &error)
{
    uint64_t n = 0;
    if (!value.asUInt(n) || n > FuzzSpec::maxWeight) {
        return specError(error, "\"" + key +
                                    "\" must be an integer in [0, " +
                                    std::to_string(FuzzSpec::maxWeight) +
                                    "]");
    }
    out = uint32_t(n);
    return true;
}

bool
parsePhase(const JsonValue &value, FuzzPhase &out, std::string &error)
{
    if (!value.isObject())
        return specError(error, "\"phases\" entries must be objects");
    // Unlisted patterns are off: a written phase names exactly the
    // generators it wants (the in-code default is all-on instead).
    out = FuzzPhase{0, 0, 0, 0};
    for (const auto &[key, member] : value.object) {
        if (key == "stride") {
            if (!parseWeight(member, key, out.stride, error))
                return false;
        } else if (key == "chase") {
            if (!parseWeight(member, key, out.chase, error))
                return false;
        } else if (key == "markov") {
            if (!parseWeight(member, key, out.markov, error))
                return false;
        } else if (key == "scatter") {
            if (!parseWeight(member, key, out.scatter, error))
                return false;
        } else {
            return specError(error,
                             "unknown phase key \"" + key +
                                 "\" (valid: stride, chase, markov, "
                                 "scatter)");
        }
    }
    if (out.stride + out.chase + out.markov + out.scatter == 0)
        return specError(error, "phase has no positive weight");
    return true;
}

} // namespace

bool
parseFuzzSpec(const std::string &text, FuzzSpec &out, std::string &error)
{
    out = FuzzSpec{};
    JsonValue doc;
    if (!parseJson(text, doc, error)) {
        error = "fuzz spec: " + error;
        return false;
    }
    if (!doc.isObject())
        return specError(error, "top level must be an object");

    for (const auto &[key, value] : doc.object) {
        if (key == "seed") {
            if (!value.asUInt(out.seed))
                return specError(error,
                                 "\"seed\" must be a non-negative "
                                 "integer");
        } else if (key == "footprint-kb") {
            uint64_t n = 0;
            if (!value.asUInt(n) || n < FuzzSpec::minFootprintKb ||
                n > FuzzSpec::maxFootprintKb) {
                return specError(
                    error,
                    "\"footprint-kb\" must be an integer in [" +
                        std::to_string(FuzzSpec::minFootprintKb) + ", " +
                        std::to_string(FuzzSpec::maxFootprintKb) + "]");
            }
            out.footprintKb = uint32_t(n);
        } else if (key == "phase-len") {
            uint64_t n = 0;
            if (!value.asUInt(n) || n == 0 || n > (1u << 24)) {
                return specError(error,
                                 "\"phase-len\" must be an integer in "
                                 "[1, 16777216]");
            }
            out.phaseLen = uint32_t(n);
        } else if (key == "phases") {
            if (!value.isArray() || value.array.empty())
                return specError(
                    error, "\"phases\" must be a non-empty array");
            out.phases.clear();
            for (const JsonValue &entry : value.array) {
                FuzzPhase phase;
                if (!parsePhase(entry, phase, error))
                    return false;
                out.phases.push_back(phase);
            }
        } else {
            return specError(error,
                             "unknown section \"" + key +
                                 "\" (valid: seed, footprint-kb, "
                                 "phase-len, phases)");
        }
    }
    return true;
}

// ------------------------------------------------------------------ //
// The generator workload
// ------------------------------------------------------------------ //

FuzzWorkload::FuzzWorkload(const FuzzSpec &spec)
    : _spec(spec),
      _heap(Addr{0x20000000}),
      _rng(spec.seed * 0x9e37 + 0xf022)
{
    _blocks = uint64_t(_spec.footprintKb) * 1024 / blockBytes;
    _base = _heap.alloc(uint64_t(_spec.footprintKb) * 1024, blockBytes);
    _frame = _heap.alloc(256, blockBytes);

    // Stride generators: four concurrent runs with distinct strides,
    // spread across the arena so they do not shadow one another.
    for (unsigned s = 0; s < 4; ++s) {
        StrideStream run;
        run.pos = _rng.below(_blocks);
        int64_t magnitude = int64_t(1 + _rng.below(8));
        run.stride = _rng.percentChance(25) ? -magnitude : magnitude;
        _strideStreams.push_back(run);
    }

    // Chase generator: a fixed random permutation ring. The walk
    // repeats the same node order every lap — the recurrent miss
    // stream a Markov table can learn, with no usable stride.
    uint64_t ringSize = std::min<uint64_t>(_blocks, 16384);
    _chaseRing.resize(size_t(ringSize));
    for (size_t i = 0; i < _chaseRing.size(); ++i)
        _chaseRing[i] = uint32_t(i);
    for (size_t i = _chaseRing.size(); i-- > 1;)
        std::swap(_chaseRing[i], _chaseRing[_rng.below(i + 1)]);

    // Markov-correlated delta chain: a small transition table where
    // each state picks between two successors 75/25 — irregular but
    // statistically repetitive deltas (the Pangloss stress shape).
    for (unsigned s = 0; s < kMarkovStates; ++s) {
        int32_t magnitude = int32_t(1 + _rng.below(31));
        _markovDelta[s] = _rng.percentChance(50) ? -magnitude
                                                 : magnitude;
        _markovNext[s][0] = uint8_t(_rng.below(kMarkovStates));
        _markovNext[s][1] = uint8_t(_rng.below(kMarkovStates));
    }
    _markovPos = _rng.below(_blocks);
}

Addr
FuzzWorkload::blockAddr(uint64_t index) const
{
    return _base + blockOf(index) * blockBytes;
}

void
FuzzWorkload::burstStride()
{
    constexpr uint8_t r_ptr = 1;
    constexpr uint8_t r_val = 2;
    constexpr uint8_t r_acc = 3;

    StrideStream &run = _strideStreams[_strideNext];
    Addr pc = pcBase + 0x000 + _strideNext * 0x40;
    for (unsigned k = 0; k < 4; ++k) {
        emitLoad(pc + k * 8, r_val, blockAddr(run.pos), r_ptr);
        emitAlu(pc + k * 8 + 4, r_acc, r_acc, r_val);
        // Advance modulo the arena; the unsigned wrap keeps negative
        // strides walking the ring in the other direction.
        run.pos = blockOf(run.pos + uint64_t(run.stride) + _blocks);
    }
    emitStore(pc + 0x20, _frame + 8 * (run.pos & 7), r_acc, r_acc);
    emitBranch(pc + 0x24, true, pc, r_acc);
    emitBranch(pc + 0x28, false, pc, r_acc);
    _strideNext = (_strideNext + 1) % unsigned(_strideStreams.size());
}

void
FuzzWorkload::burstChase()
{
    constexpr uint8_t r_node = 4;
    constexpr uint8_t r_acc = 5;

    Addr pc = pcBase + 0x200;
    for (unsigned k = 0; k < 5; ++k) {
        uint64_t block = _chaseRing[size_t(_chaseCursor)];
        // Serialised through one register: each address depends on
        // the previous node's next pointer, like a real list walk.
        emitLoad(pc + k * 12, r_node, blockAddr(block), r_node);
        emitAlu(pc + k * 12 + 4, r_acc, r_acc, r_node);
        emitAlu(pc + k * 12 + 8, r_acc, r_acc);
        _chaseCursor = (_chaseCursor + 1) % _chaseRing.size();
    }
    emitStore(pc + 0x40, _frame + 8 * (_chaseCursor & 7), r_acc, r_acc);
    emitBranch(pc + 0x44, true, pc, r_node);
    emitBranch(pc + 0x48, _chaseCursor != 0, pc, r_node);
}

void
FuzzWorkload::burstMarkov()
{
    constexpr uint8_t r_ptr = 6;
    constexpr uint8_t r_val = 7;
    constexpr uint8_t r_acc = 8;

    Addr pc = pcBase + 0x300;
    for (unsigned k = 0; k < 4; ++k) {
        emitLoad(pc + k * 8, r_val, blockAddr(_markovPos), r_ptr);
        emitAlu(pc + k * 8 + 4, r_acc, r_acc, r_val);
        int32_t delta = _markovDelta[_markovState];
        _markovPos = blockOf(_markovPos + uint64_t(int64_t(delta)) +
                             _blocks);
        _markovState =
            _markovNext[_markovState][_rng.percentChance(75) ? 0 : 1];
    }
    emitStore(pc + 0x20, _frame + 8 * (_markovPos & 7), r_acc, r_acc);
    emitBranch(pc + 0x24, true, pc, r_val);
    emitBranch(pc + 0x28, (_markovPos & 1) != 0, pc, r_val);
}

void
FuzzWorkload::burstScatter()
{
    constexpr uint8_t r_idx = 9;
    constexpr uint8_t r_val = 10;
    constexpr uint8_t r_acc = 11;

    Addr pc = pcBase + 0x400;
    for (unsigned k = 0; k < 3; ++k) {
        emitLoad(pc + k * 12, r_val, blockAddr(_rng.below(_blocks)),
                 r_idx);
        emitAlu(pc + k * 12 + 4, r_acc, r_acc, r_val);
        emitAlu(pc + k * 12 + 8, r_idx, r_idx, r_val);
    }
    emitAlu(pc + 0x24, r_acc, r_acc);
    emitStore(pc + 0x28, _frame + 8 * (_stepsInPhase & 7), r_acc,
              r_acc);
    emitBranch(pc + 0x2c, true, pc, r_acc);
    emitBranch(pc + 0x30, (_stepsInPhase & 3) != 0, pc, r_acc);
}

bool
FuzzWorkload::step()
{
    const FuzzPhase &phase = _spec.phases[_phase];
    uint64_t total = uint64_t(phase.stride) + phase.chase +
                     phase.markov + phase.scatter;
    uint64_t pick = _rng.below(total);
    if (pick < phase.stride) {
        burstStride();
    } else if (pick < uint64_t(phase.stride) + phase.chase) {
        burstChase();
    } else if (pick < uint64_t(phase.stride) + phase.chase +
                          phase.markov) {
        burstMarkov();
    } else {
        burstScatter();
    }

    if (++_stepsInPhase >= _spec.phaseLen) {
        _stepsInPhase = 0;
        _phase = (_phase + 1) % _spec.phases.size();
    }
    return true;
}

} // namespace psb
