/**
 * @file
 * Analog of Olden "health" (input 3 500): a hierarchical health-care
 * simulator. A quaternary tree of villages is traversed every
 * simulation step; each village keeps a linked list of patients that
 * is walked in full, and patients migrate up the hierarchy, are
 * admitted, and are discharged, so the lists churn slowly.
 *
 * Behavioural properties preserved from the original:
 *  - the dominant access pattern is pointer chasing through linked
 *    lists of heap-allocated records (loads serialised through the
 *    next pointer);
 *  - patient records are scatter-allocated, so consecutive list nodes
 *    have no usable stride, but each traversal repeats the previous
 *    order almost exactly — exactly the recurrent miss stream a
 *    Markov predictor captures;
 *  - the footprint (~400 KB by default) far exceeds the 32 KB L1D and
 *    sits inside the L2, giving a high L1 miss rate with mostly
 *    L2-hit fills, as in the paper's Table 2.
 */

#ifndef PSB_WORKLOADS_HEALTH_SIM_HH
#define PSB_WORKLOADS_HEALTH_SIM_HH

#include <cstdint>
#include <vector>

#include "workloads/workload.hh"

namespace psb
{

/** See file comment. */
class HealthSim : public Workload
{
  public:
    /** Sizing knobs (defaults give a ~400 KB working set). */
    struct Params
    {
        unsigned treeDepth = 3;      ///< quaternary tree: 85 villages
        unsigned patientsPerLeaf = 10;
        unsigned maxListLength = 24;
        unsigned archiveBytes = 256 * 1024; ///< case-history archive
        uint64_t seed = 1;
    };

    HealthSim();
    explicit HealthSim(const Params &params);

    const char *name() const override { return "health"; }

  protected:
    bool step() override;

  private:
    struct Patient
    {
        Addr addr{};
        int next = -1; ///< index into _patients, -1 = end of list
    };

    struct Village
    {
        Addr addr{};
        int parent = -1;
        int childSlot = 0;  ///< which child pointer of the parent
        int listHead = -1;  ///< patient list
        unsigned listLen = 0;
    };

    void buildTree(int parent, unsigned depth, int slot);
    void visitVillage(unsigned v);
    int allocPatient();
    void pushFront(Village &v, int p);
    int popFront(Village &v);

    Params _params;
    SyntheticHeap _heap;
    Xorshift64 _rng;
    std::vector<Village> _villages;
    std::vector<Patient> _patients;
    std::vector<int> _freePatients;
    std::vector<unsigned> _preorder;
    size_t _cursor = 0;
    Addr _frame{}; ///< hot activation record, L1-resident
    Addr _archive{}; ///< cold case-history archive, swept strided
    uint64_t _archiveCursor = 0;

    static constexpr Addr pcBase{0x00400000};
    static constexpr unsigned villageBytes = 64;
    static constexpr unsigned patientBytes = 48;
};

} // namespace psb

#endif // PSB_WORKLOADS_HEALTH_SIM_HH
