/**
 * @file
 * Analog of "deltablue" (an incremental dataflow constraint solver in
 * C++ "with an abundance of short lived heap objects"): a pool of
 * variables connected into chains; every solver round allocates a
 * batch of constraint objects, propagates values down a long chain of
 * variables (walk variable -> determining constraint -> next
 * variable), then retracts and frees the batch.
 *
 * Behavioural properties preserved:
 *  - constraint objects live for one round and are recycled by the
 *    allocator's free list, so their addresses repeat round after
 *    round — recurrent, non-strided miss streams;
 *  - propagation is a serialised pointer chase over scatter-allocated
 *    variables with a working set several times the L1;
 *  - the heaviest L1-L2 bandwidth demand of the suite (the paper's
 *    deltablue is the largest bus consumer and gains the most from
 *    priority scheduling), obtained here with long chains and a high
 *    miss density.
 */

#ifndef PSB_WORKLOADS_CONSTRAINT_SOLVER_HH
#define PSB_WORKLOADS_CONSTRAINT_SOLVER_HH

#include <cstdint>
#include <vector>

#include "workloads/workload.hh"

namespace psb
{

/** See file comment. */
class ConstraintSolver : public Workload
{
  public:
    /** Sizing knobs (defaults give a ~700 KB working set). */
    struct Params
    {
        unsigned numVariables = 450;
        unsigned chainLength = 250;   ///< variables per propagation
        unsigned batchConstraints = 24;
        unsigned planBytes = 192 * 1024; ///< execution plan storage
        uint64_t seed = 1;
    };

    ConstraintSolver();
    explicit ConstraintSolver(const Params &params);

    const char *name() const override { return "deltablue"; }

  protected:
    bool step() override;

  private:
    struct Variable
    {
        Addr addr{};
    };

    struct Constraint
    {
        Addr addr{};
    };

    void allocBatch();
    void propagateOne();
    void writePlan();
    void retractBatch();

    Params _params;
    SyntheticHeap _heap;
    Xorshift64 _rng;
    std::vector<Variable> _variables;
    std::vector<std::vector<unsigned>> _chains; ///< variable indices
    std::vector<Constraint> _batch;

    enum class Phase { Alloc, Propagate, Retract };
    Phase _phase = Phase::Alloc;
    size_t _chainCursor = 0;
    size_t _posInChain = 0;
    Addr _frame{}; ///< hot activation record, L1-resident
    Addr _plan{}; ///< cold plan storage, swept strided
    uint64_t _planCursor = 0;

    static constexpr Addr pcBase{0x00600000};
    static constexpr unsigned variableBytes = 96;
    static constexpr unsigned constraintBytes = 56;
};

} // namespace psb

#endif // PSB_WORKLOADS_CONSTRAINT_SOLVER_HH
