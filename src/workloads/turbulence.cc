#include "workloads/turbulence.hh"

#include "util/logging.hh"

namespace psb
{

Turbulence::Turbulence() : Turbulence(Params{}) {}

Turbulence::Turbulence(const Params &params)
    : _params(params),
      _heap(Addr{0x60000000 + (params.seed % 64) * 0x400000},
            /*scatter_blocks=*/0, params.seed)
{
    uint64_t n = _params.gridDim;
    _grid = _heap.alloc(n * n * n * 8, 64);
    _spectrum = _heap.alloc(n * n * 8, 64);
}

Addr
Turbulence::element(unsigned x, unsigned y, unsigned z) const
{
    uint64_t n = _params.gridDim;
    return _grid + 8 * (uint64_t(z) * n * n + uint64_t(y) * n + x);
}

void
Turbulence::sweepLine(Pass dir)
{
    constexpr uint8_t r_a = 1;
    constexpr uint8_t r_b = 2;
    constexpr uint8_t r_acc = 3;
    constexpr uint8_t r_idx = 4;

    unsigned n = _params.gridDim;
    // Decompose the line id into the two fixed coordinates.
    unsigned u = _line % n;
    unsigned v = (_line / n) % n;

    for (unsigned i = 0; i < n; ++i) {
        Addr cur, prev;
        switch (dir) {
          case Pass::SweepX:
            cur = element(i, u, v);
            prev = element(i == 0 ? n - 1 : i - 1, u, v);
            break;
          case Pass::SweepY:
            cur = element(u, i, v);
            prev = element(u, i == 0 ? n - 1 : i - 1, v);
            break;
          default:
            cur = element(u, v, i);
            prev = element(u, v, i == 0 ? n - 1 : i - 1);
            break;
        }
        // u(i) = f(u(i), u(i-1)) with the FP density of the real
        // spectral code: loads, several independent multiply-adds,
        // store, loop overhead.
        Addr pc = pcBase + 0x40 * uint64_t(dir);
        emitLoad(pc + 0x00, r_a, cur, r_idx);
        emitLoad(pc + 0x04, r_b, prev, r_idx);
        emitAlu(pc + 0x08, r_acc, r_a, r_b, OpClass::FpMult);
        emitAlu(pc + 0x0c, 5, r_a, r_a, OpClass::FpMult);
        emitAlu(pc + 0x10, 6, r_b, r_b, OpClass::FpMult);
        emitAlu(pc + 0x14, r_acc, r_acc, r_b, OpClass::FpAdd);
        emitAlu(pc + 0x18, 5, 5, 6, OpClass::FpAdd);
        emitAlu(pc + 0x1c, r_acc, r_acc, 5, OpClass::FpAdd);
        emitStore(pc + 0x20, cur, r_acc, r_idx);
        emitAlu(pc + 0x24, r_idx, r_idx);
        emitBranch(pc + 0x28, i + 1 < n, pc + 0x00, r_idx);
    }
}

void
Turbulence::butterflyLine()
{
    constexpr uint8_t r_a = 1;
    constexpr uint8_t r_b = 2;
    constexpr uint8_t r_tw = 3;
    constexpr uint8_t r_idx = 4;

    unsigned n = _params.gridDim;
    // Radix-2 butterflies over one row of the spectrum plane with a
    // power-of-two gap: a second family of constant strides.
    unsigned gap = 1u << (_butterflyStage % 5);
    Addr row = _spectrum + uint64_t(_line % n) * n * 8;

    for (unsigned i = 0; i + gap < n; i += 2 * gap) {
        Addr a = row + 8 * i;
        Addr b = row + 8 * (i + gap);
        emitLoad(pcBase + 0x100, r_a, a, r_idx);
        emitLoad(pcBase + 0x104, r_b, b, r_idx);
        emitAlu(pcBase + 0x108, r_tw, r_a, r_b, OpClass::FpMult);
        emitAlu(pcBase + 0x10c, r_a, r_a, r_tw, OpClass::FpAdd);
        emitAlu(pcBase + 0x110, r_b, r_b, r_tw, OpClass::FpAdd);
        emitStore(pcBase + 0x114, a, r_a, r_idx);
        emitStore(pcBase + 0x118, b, r_b, r_idx);
        emitBranch(pcBase + 0x11c, i + 2 * gap + gap < n,
                   pcBase + 0x100, r_idx);
    }
}

bool
Turbulence::step()
{
    unsigned n = _params.gridDim;
    unsigned lines_per_pass = n * n;

    // One line of each direction per step: the three sweep strides
    // and the butterfly gaps are all live throughout the run, as they
    // are across one of turb3d's FFT timesteps.
    switch (_pass) {
      case Pass::SweepX:    sweepLine(Pass::SweepX); break;
      case Pass::SweepY:    sweepLine(Pass::SweepY); break;
      case Pass::SweepZ:    sweepLine(Pass::SweepZ); break;
      case Pass::Butterfly: butterflyLine(); break;
    }
    switch (_pass) {
      case Pass::SweepX:    _pass = Pass::SweepY; break;
      case Pass::SweepY:    _pass = Pass::SweepZ; break;
      case Pass::SweepZ:    _pass = Pass::Butterfly; break;
      case Pass::Butterfly:
        _pass = Pass::SweepX;
        if (++_line >= lines_per_pass) {
            _line = 0;
            ++_butterflyStage;
        }
        break;
    }
    return true;
}

} // namespace psb
