/**
 * @file
 * Server-workload family (ROADMAP item 4): three synthetic analogs of
 * the server-side access patterns catalogued in the prefetching
 * survey (Shakerinava et al., PAPERS.md) that the six paper analogs
 * do not cover. Each is a real algorithm over a SyntheticHeap, built
 * and registered exactly like the paper six (workload.cc), so stats,
 * attribution, tracing, sweeps, and the property harness see them as
 * ordinary workloads.
 *
 *   graph     breadth-first traversal over a seeded CSR graph:
 *             sequential adjacency-row scans (stride) feeding
 *             data-dependent vertex gathers (scatter) through an
 *             in-memory work queue;
 *   hashjoin  hash-join probe loop: a sequential probe-relation scan
 *             hashing into a bucket array and walking short
 *             scatter-allocated chains (the recurrent pointer chase);
 *   logscan   log-structured append + scan: sequential appends at the
 *             log head, per-record index updates (scatter), and a
 *             lagging sequential segment scan.
 */

#ifndef PSB_WORKLOADS_SERVER_WORKLOADS_HH
#define PSB_WORKLOADS_SERVER_WORKLOADS_HH

#include <cstdint>
#include <vector>

#include "workloads/workload.hh"

namespace psb
{

/** BFS over a seeded CSR graph (see file comment). */
class GraphTraversal : public Workload
{
  public:
    /** Sizing knobs (defaults give a ~600 KB working set). */
    struct Params
    {
        unsigned vertices = 4096;
        unsigned minDegree = 4;
        unsigned maxDegree = 12;
        uint64_t seed = 1;
    };

    GraphTraversal();
    explicit GraphTraversal(const Params &params);

    const char *name() const override { return "graph"; }

  protected:
    bool step() override;

  private:
    void enqueue(unsigned v);
    void startPass();

    Params _params;
    SyntheticHeap _heap;
    Xorshift64 _rng;

    std::vector<unsigned> _rowPtr; ///< CSR row offsets, V+1 entries
    std::vector<unsigned> _colIdx; ///< CSR adjacency, E entries
    std::vector<uint32_t> _visitedPass; ///< pass id that visited v

    Addr _rowPtrAddr{};
    Addr _colIdxAddr{};
    Addr _vdataAddr{};
    Addr _visitedAddr{};
    Addr _queueAddr{};

    std::vector<unsigned> _queue;
    size_t _head = 0;
    uint32_t _pass = 0;
    unsigned _nextRoot = 0; ///< restart scan cursor for new components

    static constexpr Addr pcBase{0x00b00000};
    static constexpr unsigned vdataBytes = 64;
};

/** Hash-join probe loop (see file comment). */
class HashJoin : public Workload
{
  public:
    /** Sizing knobs (defaults give a ~550 KB working set). */
    struct Params
    {
        unsigned buildRows = 4096;
        unsigned buckets = 2048;
        unsigned probeRows = 8192;
        uint64_t seed = 1;
    };

    HashJoin();
    explicit HashJoin(const Params &params);

    const char *name() const override { return "hashjoin"; }

  protected:
    bool step() override;

  private:
    struct Node
    {
        Addr addr{};
        uint64_t key = 0;
        int next = -1; ///< index into _nodes, -1 = end of chain
    };

    Params _params;
    SyntheticHeap _heap;
    Xorshift64 _rng;

    std::vector<Node> _nodes;
    std::vector<int> _bucketHead;

    Addr _bucketAddr{};
    Addr _probeAddr{};
    Addr _outputAddr{};

    uint64_t _probeCursor = 0;
    uint64_t _outputCursor = 0;

    static constexpr Addr pcBase{0x00b40000};
    static constexpr unsigned probeRowBytes = 32;
    static constexpr unsigned nodeBytes = 64;
    static constexpr unsigned outputRingBytes = 64 * 1024;
};

/** Log-structured append + scan (see file comment). */
class LogStructured : public Workload
{
  public:
    /** Sizing knobs (defaults give a ~560 KB working set). */
    struct Params
    {
        unsigned logKb = 512;       ///< record ring capacity
        unsigned indexBuckets = 4096;
        unsigned scanLag = 2048;    ///< records the scan trails by
        uint64_t seed = 1;
    };

    LogStructured();
    explicit LogStructured(const Params &params);

    const char *name() const override { return "logscan"; }

  protected:
    bool step() override;

  private:
    Addr recordAddr(uint64_t record) const;

    Params _params;
    SyntheticHeap _heap;
    Xorshift64 _rng;

    Addr _logAddr{};
    Addr _indexAddr{};
    Addr _frameAddr{};

    uint64_t _logRecords = 0; ///< ring capacity in records
    uint64_t _appendCursor = 0;
    uint64_t _scanCursor = 0;

    static constexpr Addr pcBase{0x00b80000};
    static constexpr unsigned recordBytes = 64;
};

} // namespace psb

#endif // PSB_WORKLOADS_SERVER_WORKLOADS_HH
