#include "workloads/health_sim.hh"

#include "util/logging.hh"

namespace psb
{

HealthSim::HealthSim() : HealthSim(Params{}) {}

HealthSim::HealthSim(const Params &params)
    : _params(params),
      _heap(Addr{0x10000000}, /*scatter_blocks=*/48, params.seed),
      _rng(params.seed * 0x9e37 + 17)
{
    _frame = _heap.alloc(256, 64);
    _archive = _heap.alloc(_params.archiveBytes, 64);
    buildTree(-1, _params.treeDepth, 0);

    // Seed the leaves with patients.
    for (unsigned v = 0; v < _villages.size(); ++v) {
        bool is_leaf = (4 * v + 1 >= _villages.size());
        if (!is_leaf)
            continue;
        for (unsigned i = 0; i < _params.patientsPerLeaf; ++i)
            pushFront(_villages[v], allocPatient());
    }

    // Preorder traversal order, fixed for the program's lifetime.
    _preorder.reserve(_villages.size());
    for (unsigned v = 0; v < _villages.size(); ++v)
        _preorder.push_back(v);
}

void
HealthSim::buildTree(int parent, unsigned depth, int slot)
{
    Village v;
    v.addr = _heap.alloc(villageBytes, 8);
    v.parent = parent;
    v.childSlot = slot;
    int self = int(_villages.size());
    _villages.push_back(v);
    if (depth == 0)
        return;
    for (int c = 0; c < 4; ++c)
        buildTree(self, depth - 1, c);
}

int
HealthSim::allocPatient()
{
    if (!_freePatients.empty()) {
        int p = _freePatients.back();
        _freePatients.pop_back();
        _patients[p].next = -1;
        return p;
    }
    Patient p;
    // 32-byte alignment keeps the hot fields (next pointer, vitals)
    // inside one L1 block, as structure-padded Alpha records would be.
    p.addr = _heap.alloc(patientBytes, 32);
    _patients.push_back(p);
    return int(_patients.size()) - 1;
}

void
HealthSim::pushFront(Village &v, int p)
{
    _patients[p].next = v.listHead;
    v.listHead = p;
    ++v.listLen;
}

int
HealthSim::popFront(Village &v)
{
    int p = v.listHead;
    if (p < 0)
        return -1;
    v.listHead = _patients[p].next;
    _patients[p].next = -1;
    --v.listLen;
    return p;
}

void
HealthSim::visitVillage(unsigned vi)
{
    Village &v = _villages[vi];

    // Descend from the parent: load the child pointer (dependent on
    // the parent pointer held in r1), then this village's list head.
    constexpr uint8_t r_village = 1;
    constexpr uint8_t r_node = 2;
    constexpr uint8_t r_field = 3;
    constexpr uint8_t r_acc = 4;

    if (v.parent >= 0) {
        Addr parent_addr = _villages[v.parent].addr;
        emitLoad(pcBase + 0x00, r_village,
                 parent_addr + 8 + 8 * unsigned(v.childSlot), r_village);
    }
    emitAlu(pcBase + 0x04, r_acc, r_village);
    emitLoad(pcBase + 0x08, r_node, v.addr + 0, r_village);
    emitBranch(pcBase + 0x0c, v.listHead >= 0, pcBase + 0x10, r_node);

    // Walk the patient list: the canonical pointer chase. Each
    // iteration's address depends on the previous node's next field.
    // Interleaved frame accesses model the locals and spill slots of
    // the real routine: they hit the L1 and dilute the miss density
    // to realistic levels.
    int p = v.listHead;
    unsigned idx = 0;
    while (p >= 0) {
        const Patient &pat = _patients[p];
        int next = pat.next;
        // load next pointer (serialising), a data field in the same
        // block, checkup arithmetic against the activation record,
        // and the loop branch.
        emitLoad(pcBase + 0x10, r_node, pat.addr + 0, r_node);
        emitLoad(pcBase + 0x14, r_field, pat.addr + 8, r_node);
        emitLoad(pcBase + 0x18, r_acc, _frame + 8 * (idx & 7), r_acc);
        emitAlu(pcBase + 0x1c, r_acc, r_acc, r_field);
        emitAlu(pcBase + 0x20, r_acc, r_acc);
        emitAlu(pcBase + 0x24, r_field, r_field);
        emitStore(pcBase + 0x28, _frame + 8 * (idx & 7), r_acc, r_acc);
        emitAlu(pcBase + 0x2c, r_field, r_acc);
        emitBranch(pcBase + 0x30, next >= 0, pcBase + 0x10, r_node);
        p = next;
        ++idx;
    }

    // Update the village's slice of the case-history archive: a
    // sequential (stride-predictable) sweep whose footprint keeps the
    // L1 under pressure, standing in for the input-record processing
    // of the real program. These misses are captured by the stride
    // half of the predictors and never enter the Markov table.
    constexpr unsigned sweep_bytes = 512;
    for (unsigned off = 0; off < sweep_bytes; off += 32) {
        Addr rec = _archive + ((_archiveCursor + off) %
                               _params.archiveBytes);
        emitLoad(pcBase + 0x90, r_field, rec, r_acc);
        emitAlu(pcBase + 0x94, r_acc, r_acc, r_field);
        emitAlu(pcBase + 0x98, r_acc, r_acc);
        emitBranch(pcBase + 0x9c, off + 32 < sweep_bytes,
                   pcBase + 0x90, r_acc);
    }
    _archiveCursor = (_archiveCursor + sweep_bytes) %
        _params.archiveBytes;

    // Dynamics: with some probability a patient moves up to the
    // parent (referral), one is admitted, or one is discharged.
    if (v.parent >= 0 && v.listLen > 0 && _rng.percentChance(8)) {
        Village &parent = _villages[v.parent];
        if (parent.listLen < _params.maxListLength) {
            int moved = popFront(v);
            pushFront(parent, moved);
            // unlink store + relink stores
            emitStore(pcBase + 0x60, v.addr + 0, r_node, r_village);
            emitStore(pcBase + 0x64, _patients[moved].addr + 0, r_node,
                      r_node);
            emitStore(pcBase + 0x68, parent.addr + 0, r_node, r_village);
        }
    }
    if (_rng.percentChance(5) && v.listLen < _params.maxListLength) {
        int admitted = allocPatient();
        pushFront(v, admitted);
        emitStore(pcBase + 0x70, _patients[admitted].addr + 0, r_acc,
                  r_node);
        emitStore(pcBase + 0x74, _patients[admitted].addr + 8, r_acc,
                  r_node);
        emitStore(pcBase + 0x78, v.addr + 0, r_node, r_village);
    }
    if (_rng.percentChance(5) && v.listLen > 1) {
        int discharged = popFront(v);
        _heap.free(_patients[discharged].addr, patientBytes);
        // Returning the record reuses its address for the next
        // admission — the allocator recycling the paper's pointer
        // programs rely on.
        _freePatients.push_back(discharged);
        emitStore(pcBase + 0x80, v.addr + 0, r_node, r_village);
    }

    emitAlu(pcBase + 0x84, r_acc, r_acc);
    emitBranch(pcBase + 0x88, true, pcBase + 0x00, r_acc);
}

bool
HealthSim::step()
{
    visitVillage(_preorder[_cursor]);
    _cursor = (_cursor + 1) % _preorder.size();
    return true;
}

} // namespace psb
