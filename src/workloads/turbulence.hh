/**
 * @file
 * Analog of "turb3d" (SPEC FP: isotropic, homogeneous turbulence in a
 * cube with periodic boundaries): repeated sweeps over a 3-D double
 * grid along the x, y, and z directions with FFT-style butterfly
 * passes — the pure-stride FORTRAN representative of the suite.
 *
 * Behavioural properties preserved:
 *  - every load stream has a constant stride (1 element in x, one row
 *    in y, one plane in z, power-of-two gaps in the butterflies), so
 *    the PC-stride stream buffers already capture nearly everything
 *    and PSB's Markov table adds nothing: the paper's result that
 *    "our PSB architectures achieve basically the same performance as
 *    the PC-stride architecture" on FORTRAN codes;
 *  - FP-heavy op mix and a grid (~860 KB) larger than the L1.
 */

#ifndef PSB_WORKLOADS_TURBULENCE_HH
#define PSB_WORKLOADS_TURBULENCE_HH

#include <cstdint>

#include "workloads/workload.hh"

namespace psb
{

/** See file comment. */
class Turbulence : public Workload
{
  public:
    /** Sizing knobs (default grid 40^3 doubles = 512 KB, L2-resident). */
    struct Params
    {
        unsigned gridDim = 40;
        uint64_t seed = 1;
    };

    Turbulence();
    explicit Turbulence(const Params &params);

    const char *name() const override { return "turb3d"; }

  protected:
    bool step() override;

  private:
    enum class Pass { SweepX, SweepY, SweepZ, Butterfly };

    void sweepLine(Pass dir);
    void butterflyLine();

    Addr element(unsigned x, unsigned y, unsigned z) const;

    Params _params;
    SyntheticHeap _heap;
    Addr _grid{};
    Addr _spectrum{};
    Pass _pass = Pass::SweepX;
    unsigned _line = 0;     ///< which line of the current pass
    unsigned _butterflyStage = 0;

    static constexpr Addr pcBase{0x00900000};
};

} // namespace psb

#endif // PSB_WORKLOADS_TURBULENCE_HH
