/**
 * @file
 * Workload base class and factory.
 *
 * The paper evaluates five pointer-intensive programs (health, burg,
 * deltablue, gs, sis) and one FORTRAN code (turb3d) compiled for
 * Alpha. This reproduction cannot run Alpha binaries, so each
 * benchmark is replaced by a synthetic analog: a real algorithm with
 * the same data-structure behaviour, executed against a SyntheticHeap
 * and emitting the dynamic micro-op stream directly (DESIGN.md §4).
 *
 * Every workload runs forever (it loops over passes of its data
 * structures), so the simulator decides the region length; steady
 * state is reached within the warm-up because footprints are sized in
 * the hundreds of kilobytes to low megabytes.
 */

#ifndef PSB_WORKLOADS_WORKLOAD_HH
#define PSB_WORKLOADS_WORKLOAD_HH

#include <memory>
#include <string>
#include <vector>

#include "trace/synthetic_heap.hh"
#include "trace/trace_builder.hh"
#include "util/random.hh"

namespace psb
{

/** A named, seedable synthetic benchmark. */
class Workload : public TraceBuilder
{
  public:
    ~Workload() override = default;

    /** Paper benchmark this workload stands in for. */
    virtual const char *name() const = 0;
};

/** The six benchmark analogs, in the paper's table order. */
const std::vector<std::string> &workloadNames();

/**
 * The full registry: the paper six first (in workloadNames() order),
 * then the server family ("graph", "hashjoin", "logscan") and the
 * seeded fuzzer ("fuzz"). The figure-5 benchmark matrix and the
 * golden corpus iterate workloadNames() and must not grow when a
 * workload is added here.
 */
const std::vector<std::string> &allWorkloadNames();

/**
 * Instantiate a workload by registry name (allWorkloadNames()). For
 * "fuzz" the scenario is derived from @p seed via FuzzSpec::fromSeed.
 * @param seed Seed for the workload's deterministic PRNG.
 * @return The workload, or nullptr for an unknown name.
 */
std::unique_ptr<Workload> makeWorkload(const std::string &name,
                                       uint64_t seed = 1);

} // namespace psb

#endif // PSB_WORKLOADS_WORKLOAD_HH
