#include "workloads/circuit_synth.hh"

#include "util/logging.hh"

namespace psb
{

CircuitSynth::CircuitSynth() : CircuitSynth(Params{}) {}

CircuitSynth::CircuitSynth(const Params &params)
    : _params(params),
      _heap(Addr{0x50000000}, /*scatter_blocks=*/0, params.seed),
      _rng(params.seed * 0x515u + 23)
{
    _frame = _heap.alloc(256, 64);
    _gates.resize(_params.numNodes);
    for (auto &g : _gates) {
        g.addr = _heap.alloc(gateBytes, 64);
        g.type = unsigned(_rng.below(_params.routineVariants));
    }
    // Fanin edges are drawn from a locality window: transitions are
    // briefly Markov-learnable, which is what lets unstable pointer
    // streams pass the naive two-miss filter and thrash the buffers.
    for (auto &g : _gates) {
        g.fanin.reserve(_params.faninsPerNode);
        for (unsigned i = 0; i < _params.faninsPerNode; ++i)
            g.fanin.push_back(pickFanin());
    }
    // One cube-table region per routine variant: the per-routine data
    // each "software-pipelined" optimisation loop streams through.
    _regions.resize(_params.routineVariants);
    _regionCursor.assign(_params.routineVariants, 0);
    for (auto &r : _regions)
        r = _heap.alloc(_params.regionBytes, 64);
}

void
CircuitSynth::visitGate(unsigned gi)
{
    constexpr uint8_t r_gate = 1;
    constexpr uint8_t r_fan = 2;
    constexpr uint8_t r_val = 3;
    constexpr uint8_t r_acc = 4;
    constexpr uint8_t r_cube = 5;

    Gate &g = _gates[gi];

    // Each gate type executes a different static routine — the paper's
    // sis has "large amounts of missing loads" spread over many PCs,
    // which is what drives stream thrashing: there are far more
    // candidate streams than the eight stream buffers.
    Addr routine = pcBase + uint64_t(g.type) * 0x100;  // distinct sets via hashed stride-table index

    // The shared sweep over the gate array (one PC, clean stride).
    emitLoad(pcBase + 0x00, r_gate, g.addr + 0, r_gate);
    emitLoad(pcBase + 0x04, r_val, g.addr + 16, r_gate);
    emitAlu(pcBase + 0x08, r_acc, r_val, r_acc);

    // The routine's cube-table stream: every variant walks its own
    // region with unit stride. Dozens of concurrent stride streams
    // compete for 8 buffers — naive allocation thrashes, confidence
    // keeps the productive ones.
    Addr cube = _regions[g.type] + _regionCursor[g.type];
    _regionCursor[g.type] =
        (_regionCursor[g.type] + 32) % _params.regionBytes;
    emitLoad(routine + 0x10, r_cube, cube, r_cube);
    emitAlu(routine + 0x14, r_acc, r_acc, r_cube);
    emitLoad(routine + 0x18, r_cube, cube + 8, r_cube);
    emitAlu(routine + 0x1c, r_acc, r_acc, r_cube);

    // Fanin walk (pointer component): gate records reached through
    // edges that the optimiser keeps rewiring — briefly predictable,
    // then stale. Serialised through r_fan.
    for (size_t i = 0; i < g.fanin.size(); ++i) {
        const Gate &src = _gates[g.fanin[i]];
        emitLoad(routine + 0x20 + 8 * uint64_t(i), r_fan,
                 src.addr + 8, r_fan);
        emitAlu(routine + 0x24 + 8 * uint64_t(i), r_acc, r_acc, r_fan);
    }

    // Locals: hot, L1-resident.
    emitLoad(routine + 0x48, r_val, _frame + 8 * (gi & 7), r_val);
    emitAlu(routine + 0x4c, r_acc, r_acc, r_val);
    emitStore(routine + 0x50, g.addr + 24, r_acc, r_gate);
    emitStore(routine + 0x54, _frame + 8 * (gi & 7), r_acc, r_gate);
    emitAlu(routine + 0x58, r_val, r_acc);
    emitBranch(routine + 0x5c, (gi & 7) != 0, routine + 0x00, r_acc);
}

void
CircuitSynth::rewireSome()
{
    // Local optimisation changes the netlist: a slice of fanin edges
    // is redirected, so the just-learned Markov transitions for those
    // streams go stale.
    _faninWindow = unsigned(_rng.below(_gates.size()));
    unsigned count = unsigned(_gates.size()) / 12;
    for (unsigned i = 0; i < count; ++i) {
        Gate &g = _gates[_rng.below(_gates.size())];
        unsigned slot = unsigned(_rng.below(g.fanin.size()));
        g.fanin[slot] = pickFanin();
    }
}

unsigned
CircuitSynth::pickFanin()
{
    // Draw from a sliding 1K-gate neighbourhood so the transition set
    // is small enough for the Markov table to learn between rewires.
    unsigned window = 1024;
    return (_faninWindow + unsigned(_rng.below(window))) %
        unsigned(_gates.size());
}

bool
CircuitSynth::step()
{
    visitGate(unsigned(_cursor));
    _cursor = (_cursor + 1) % _gates.size();
    if (++_sinceRewire >= _params.rewireInterval) {
        _sinceRewire = 0;
        rewireSome();
    }
    return true;
}

} // namespace psb
