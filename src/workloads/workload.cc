#include "workloads/workload.hh"

#include "workloads/circuit_synth.hh"
#include "workloads/constraint_solver.hh"
#include "workloads/fuzz_workload.hh"
#include "workloads/health_sim.hh"
#include "workloads/interpreter.hh"
#include "workloads/server_workloads.hh"
#include "workloads/tree_parser.hh"
#include "workloads/turbulence.hh"

namespace psb
{

const std::vector<std::string> &
workloadNames()
{
    static const std::vector<std::string> names = {
        "health", "burg", "deltablue", "gs", "sis", "turb3d",
    };
    return names;
}

const std::vector<std::string> &
allWorkloadNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> all = workloadNames();
        all.insert(all.end(), {"graph", "hashjoin", "logscan", "fuzz"});
        return all;
    }();
    return names;
}

std::unique_ptr<Workload>
makeWorkload(const std::string &name, uint64_t seed)
{
    if (name == "health") {
        HealthSim::Params p;
        p.seed = seed;
        return std::make_unique<HealthSim>(p);
    }
    if (name == "burg") {
        TreeParser::Params p;
        p.seed = seed;
        return std::make_unique<TreeParser>(p);
    }
    if (name == "deltablue") {
        ConstraintSolver::Params p;
        p.seed = seed;
        return std::make_unique<ConstraintSolver>(p);
    }
    if (name == "gs") {
        Interpreter::Params p;
        p.seed = seed;
        return std::make_unique<Interpreter>(p);
    }
    if (name == "sis") {
        CircuitSynth::Params p;
        p.seed = seed;
        return std::make_unique<CircuitSynth>(p);
    }
    if (name == "turb3d") {
        Turbulence::Params p;
        p.seed = seed;
        return std::make_unique<Turbulence>(p);
    }
    if (name == "graph") {
        GraphTraversal::Params p;
        p.seed = seed;
        return std::make_unique<GraphTraversal>(p);
    }
    if (name == "hashjoin") {
        HashJoin::Params p;
        p.seed = seed;
        return std::make_unique<HashJoin>(p);
    }
    if (name == "logscan") {
        LogStructured::Params p;
        p.seed = seed;
        return std::make_unique<LogStructured>(p);
    }
    if (name == "fuzz")
        return std::make_unique<FuzzWorkload>(FuzzSpec::fromSeed(seed));
    return nullptr;
}

} // namespace psb
