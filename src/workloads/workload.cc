#include "workloads/workload.hh"

#include "workloads/circuit_synth.hh"
#include "workloads/constraint_solver.hh"
#include "workloads/health_sim.hh"
#include "workloads/interpreter.hh"
#include "workloads/tree_parser.hh"
#include "workloads/turbulence.hh"

namespace psb
{

const std::vector<std::string> &
workloadNames()
{
    static const std::vector<std::string> names = {
        "health", "burg", "deltablue", "gs", "sis", "turb3d",
    };
    return names;
}

std::unique_ptr<Workload>
makeWorkload(const std::string &name, uint64_t seed)
{
    if (name == "health") {
        HealthSim::Params p;
        p.seed = seed;
        return std::make_unique<HealthSim>(p);
    }
    if (name == "burg") {
        TreeParser::Params p;
        p.seed = seed;
        return std::make_unique<TreeParser>(p);
    }
    if (name == "deltablue") {
        ConstraintSolver::Params p;
        p.seed = seed;
        return std::make_unique<ConstraintSolver>(p);
    }
    if (name == "gs") {
        Interpreter::Params p;
        p.seed = seed;
        return std::make_unique<Interpreter>(p);
    }
    if (name == "sis") {
        CircuitSynth::Params p;
        p.seed = seed;
        return std::make_unique<CircuitSynth>(p);
    }
    if (name == "turb3d") {
        Turbulence::Params p;
        p.seed = seed;
        return std::make_unique<Turbulence>(p);
    }
    return nullptr;
}

} // namespace psb
