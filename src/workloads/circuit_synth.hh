/**
 * @file
 * Analog of "sis" (synthesis of synchronous/asynchronous circuits,
 * input "simplify"; ~172k lines with "a good deal of pointer
 * arithmetic"): a large gate-level netlist is repeatedly optimised.
 * Each pass sweeps the node array (strided) while visiting every
 * node's fanin gates through pointers (scattered), with the node
 * body dispatched across many distinct static routines.
 *
 * Behavioural properties preserved — this is the paper's stream
 * thrashing stress case:
 *  - a very large number of distinct missing load PCs (the node body
 *    is spread over `routineVariants` synthetic code addresses), so
 *    allocation requests hammer the eight stream buffers;
 *  - fanin edges are rewired on a schedule, so a stream that was
 *    briefly predictable goes cold — naive two-miss allocation keeps
 *    stealing buffers for doomed streams (paper: 2Miss degrades sis),
 *    while confidence allocation keeps the stable sweep streams;
 *  - footprint above the L2 (~1.3 MB), giving real memory traffic.
 */

#ifndef PSB_WORKLOADS_CIRCUIT_SYNTH_HH
#define PSB_WORKLOADS_CIRCUIT_SYNTH_HH

#include <cstdint>
#include <vector>

#include "workloads/workload.hh"

namespace psb
{

/** See file comment. */
class CircuitSynth : public Workload
{
  public:
    /** Sizing knobs (defaults give a ~1.3 MB working set). */
    struct Params
    {
        unsigned numNodes = 6000;
        unsigned faninsPerNode = 3;
        unsigned routineVariants = 20; ///< distinct load-PC groups
        unsigned rewireInterval = 3000; ///< node visits between rewires
        unsigned regionBytes = 28 * 1024;   ///< per-routine cube table
        uint64_t seed = 1;
    };

    CircuitSynth();
    explicit CircuitSynth(const Params &params);

    const char *name() const override { return "sis"; }

  protected:
    bool step() override;

  private:
    struct Gate
    {
        Addr addr{};
        std::vector<unsigned> fanin;
        unsigned type = 0; ///< selects the routine variant
    };

    void visitGate(unsigned g);
    void rewireSome();
    unsigned pickFanin();

    Params _params;
    SyntheticHeap _heap;
    Xorshift64 _rng;
    std::vector<Gate> _gates;
    std::vector<Addr> _regions;       ///< per-variant cube tables
    std::vector<uint64_t> _regionCursor;
    size_t _cursor = 0;
    unsigned _sinceRewire = 0;
    unsigned _faninWindow = 0;
    Addr _frame{}; ///< hot activation record, L1-resident

    static constexpr Addr pcBase{0x00800000};
    static constexpr unsigned gateBytes = 64;
};

} // namespace psb

#endif // PSB_WORKLOADS_CIRCUIT_SYNTH_HH
