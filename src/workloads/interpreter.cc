#include "workloads/interpreter.hh"

#include "util/logging.hh"

namespace psb
{

Interpreter::Interpreter() : Interpreter(Params{}) {}

Interpreter::Interpreter(const Params &params)
    : _params(params),
      _heap(Addr{0x40000000}, /*scatter_blocks=*/0, params.seed),
      _rng(params.seed * 0x6573u + 11)
{
    _program = _heap.alloc(_params.programBytes, 64);
    _dictionary = _heap.alloc(_params.dictionaryBytes, 64);
    _image = _heap.alloc(uint64_t(_params.imageRowBytes) * imageRows, 64);
    _stackBase = _heap.alloc(4096, 64);
    _dictState = params.seed | 1;
}

void
Interpreter::interpretOne()
{
    constexpr uint8_t r_op = 1;
    constexpr uint8_t r_tos = 2;
    constexpr uint8_t r_tmp = 3;
    constexpr uint8_t r_dict = 4;

    // Fetch the next token: sequential scan of the program text.
    emitLoad(pcBase + 0x00, r_op, _program + _pcOffset, r_op);
    _pcOffset = (_pcOffset + 8) % _params.programBytes;

    // Dispatch: semi-predictable indirect branch modelled as a
    // conditional off the opcode with a data-dependent outcome.
    // The opcode stream is deterministic per program position, so the
    // pattern repeats every pass through the text.
    uint64_t op_hash = (_pcOffset * 0x9e3779b97f4a7c15ull) >> 56;
    bool to_dict = (op_hash % 5) == 0;
    emitBranch(pcBase + 0x04, to_dict, pcBase + 0x40, r_op);

    if (to_dict) {
        // Name lookup: hash chain of two probes into the dictionary.
        // The hash is a pure function of the program position, so the
        // probe addresses recur every pass through the text — but the
        // number of distinct transitions far exceeds the 2K-entry
        // Markov table, so coverage stays partial, as for real gs.
        uint64_t h = (_pcOffset + _dictState) *
            6364136223846793005ull;
        Addr probe1 = _dictionary +
            ((h >> 16) % (_params.dictionaryBytes / 64)) * 64;
        Addr probe2 = _dictionary +
            ((h >> 32) % (_params.dictionaryBytes / 64)) * 64;
        emitAlu(pcBase + 0x40, r_dict, r_op);
        emitLoad(pcBase + 0x44, r_tmp, probe1, r_dict);
        emitBranch(pcBase + 0x48, (h >> 8) & 1, pcBase + 0x4c,
                   r_tmp);
        emitLoad(pcBase + 0x4c, r_tmp, probe2, r_tmp);
        emitAlu(pcBase + 0x50, r_tos, r_tmp, r_tos);
    } else {
        // Stack operation: push/pop against the hot operand stack.
        bool push = (_stackDepth < 64) &&
            ((op_hash & 3) != 3 || _stackDepth == 0);
        if (push) {
            emitAlu(pcBase + 0x10, r_tos, r_op, r_tos);
            emitStore(pcBase + 0x14, _stackBase + 8 * _stackDepth,
                      r_tos, r_tmp);
            ++_stackDepth;
        } else {
            --_stackDepth;
            emitLoad(pcBase + 0x20, r_tos,
                     _stackBase + 8 * _stackDepth, r_tmp);
            emitAlu(pcBase + 0x24, r_tos, r_tos);
        }
    }

    emitAlu(pcBase + 0x60, r_tmp, r_tos);
    emitBranch(pcBase + 0x64, true, pcBase + 0x00, r_tmp);
}

void
Interpreter::rasterRow()
{
    constexpr uint8_t r_px = 1;
    constexpr uint8_t r_acc = 2;
    constexpr uint8_t r_idx = 3;

    // Render one image row: a long unit-stride read-modify-write
    // sweep, the stride-predictable half of Ghostscript.
    Addr row = _image + uint64_t(_row) * _params.imageRowBytes;
    for (unsigned off = 0; off < _params.imageRowBytes; off += 32) {
        emitLoad(pcBase + 0x80, r_px, row + off, r_idx);
        emitAlu(pcBase + 0x84, r_acc, r_px, r_acc,
                OpClass::FpMult);
        emitStore(pcBase + 0x88, row + off, r_acc, r_idx);
        emitAlu(pcBase + 0x8c, r_idx, r_idx);
        emitBranch(pcBase + 0x90, off + 32 < _params.imageRowBytes,
                   pcBase + 0x80, r_idx);
    }
    _row = (_row + 1) % imageRows;
}

bool
Interpreter::step()
{
    if (_sinceRaster >= _params.opsPerRaster) {
        _sinceRaster = 0;
        rasterRow();
        return true;
    }
    ++_sinceRaster;
    interpretOne();
    return true;
}

} // namespace psb
