/**
 * @file
 * Seeded workload fuzzer (DESIGN.md §15): a fully deterministic
 * generator of composable access-pattern mixes for property-style
 * testing of every prefetcher backend.
 *
 * A FuzzSpec declares the scenario: the PRNG seed, the data footprint,
 * and a phase schedule where each phase weights four pattern
 * generators against each other:
 *
 *   stride   sequential runs with per-stream constant strides — the
 *            bread and butter of the stride table;
 *   chase    a pointer chase over a fixed random permutation ring,
 *            the recurrent no-stride miss stream a Markov predictor
 *            captures;
 *   markov   a correlated delta chain driven by a small seeded
 *            transition table (Pangloss-style irregular deltas);
 *   scatter  uniform random blocks — irreducible noise no predictor
 *            should chase.
 *
 * Specs round-trip through the strict JSON grammar (util/json.hh):
 * parseFuzzSpec() rejects unknown keys, non-integer weights, and
 * degenerate phases; FuzzSpec::toJson() emits the one canonical
 * spelling, so emit(parse(emit(s))) == emit(s) byte for byte. A spec
 * printed into a CI log is therefore directly replayable with
 * `psb-sim --workload fuzz --fuzz-spec FILE` (EXPERIMENTS.md,
 * "Fuzzing workloads").
 *
 * FuzzSpec::fromSeed() derives a spec deterministically from a bare
 * seed — the registry workload "fuzz" uses it, so psb-sweep sweeps
 * generated scenario grids by just listing seeds.
 */

#ifndef PSB_WORKLOADS_FUZZ_WORKLOAD_HH
#define PSB_WORKLOADS_FUZZ_WORKLOAD_HH

#include <cstdint>
#include <string>
#include <vector>

#include "workloads/workload.hh"

namespace psb
{

/** Pattern-mix weights for one phase; at least one must be > 0. */
struct FuzzPhase
{
    uint32_t stride = 1;
    uint32_t chase = 1;
    uint32_t markov = 1;
    uint32_t scatter = 1;

    bool operator==(const FuzzPhase &) const = default;
};

/** Declarative fuzz scenario (see file comment). */
struct FuzzSpec
{
    /** Weights above this are certainly typos, not scenarios. */
    static constexpr uint32_t maxWeight = 65536;
    /** Footprint bounds: below 64 KB nothing misses; above 64 MB the
     *  permutation/index tables stop being construction-cheap. */
    static constexpr uint32_t minFootprintKb = 64;
    static constexpr uint32_t maxFootprintKb = 64 * 1024;

    uint64_t seed = 1;
    uint32_t footprintKb = 256;
    /** Workload steps per phase before rotating to the next. */
    uint32_t phaseLen = 4096;
    std::vector<FuzzPhase> phases{FuzzPhase{}};

    /** Derive a random-but-deterministic scenario from a bare seed. */
    static FuzzSpec fromSeed(uint64_t seed);

    /** The canonical JSON spelling (stable key order, one format). */
    std::string toJson() const;

    bool operator==(const FuzzSpec &) const = default;
};

/**
 * Parse @p text as a fuzz spec, strictly: unknown keys (top-level or
 * per phase), negative/fractional/oversized numbers, an empty phase
 * list, or an all-zero-weight phase are all hard errors.
 * @param error Human-readable message when returning false.
 */
bool parseFuzzSpec(const std::string &text, FuzzSpec &out,
                   std::string &error);

/** The generator workload driven by a FuzzSpec. */
class FuzzWorkload : public Workload
{
  public:
    explicit FuzzWorkload(const FuzzSpec &spec);

    const char *name() const override { return "fuzz"; }

    const FuzzSpec &spec() const { return _spec; }

  protected:
    bool step() override;

  private:
    /** One concurrently live stride run. */
    struct StrideStream
    {
        uint64_t pos = 0;   ///< current block index
        int64_t stride = 1; ///< blocks per advance
    };

    void burstStride();
    void burstChase();
    void burstMarkov();
    void burstScatter();

    uint64_t blockOf(uint64_t index) const { return index % _blocks; }
    Addr blockAddr(uint64_t index) const;

    FuzzSpec _spec;
    SyntheticHeap _heap;
    Xorshift64 _rng;
    Addr _base{};  ///< the footprint arena
    Addr _frame{}; ///< hot activation record, L1-resident
    uint64_t _blocks = 0;

    std::vector<StrideStream> _strideStreams;
    unsigned _strideNext = 0;

    std::vector<uint32_t> _chaseRing; ///< block-index permutation
    uint64_t _chaseCursor = 0;

    static constexpr unsigned kMarkovStates = 8;
    int32_t _markovDelta[kMarkovStates] = {};
    uint8_t _markovNext[kMarkovStates][2] = {};
    unsigned _markovState = 0;
    uint64_t _markovPos = 0;

    size_t _phase = 0;
    uint64_t _stepsInPhase = 0;

    static constexpr Addr pcBase{0x00bc0000};
    static constexpr unsigned blockBytes = 64;
};

} // namespace psb

#endif // PSB_WORKLOADS_FUZZ_WORKLOAD_HH
