/**
 * @file
 * Ablation of predictor *order* and the §4.5 TLB option.
 *
 * The paper: "We simulated higher order Markov predictors ... but saw
 * little to no improvement in prediction accuracy and coverage over
 * first order Markov predictor for the programs we examined" (§2.2),
 * and "The TLB translations could potentially be stored with each
 * stream buffer" (§4.5). This harness quantifies both inside the PSB:
 * ConfAlloc-Priority buffers directed by the SFM predictor, by
 * order-1/2/3 context predictors, and with cached per-buffer TLB
 * translations.
 */

#include <cstdio>

#include "common.hh"
#include "util/table_printer.hh"
#include "workloads/workload.hh"

int
main(int argc, char **argv)
{
    using namespace psb;
    using namespace psb::bench;
    BenchOptions opts = parseOptions(argc, argv);
    if (opts.instructions > 500'000)
        opts.instructions = 500'000;

    std::puts("=== ablation: predictor order and cached TLB "
              "translations ===\n");

    TablePrinter table;
    table.addRow({"program", "SFM (paper)", "order-1", "order-2",
                  "order-3", "SFM+TLBcache"});
    for (const std::string &name : workloadNames()) {
        std::vector<std::string> row{name};
        SimResult base = runSim(name, PaperConfig::Base, opts);
        auto pct = [&](const SimResult &r) {
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%+.1f%%",
                          speedupPct(r.ipc, base.ipc));
            return std::string(buf);
        };
        row.push_back(
            pct(runSim(name, PaperConfig::ConfAllocPriority, opts)));
        for (unsigned k : {1u, 2u, 3u}) {
            row.push_back(pct(runSim(
                name, PaperConfig::ConfAllocPriority, opts,
                "order=" + std::to_string(k),
                [&](SimConfig &cfg) { cfg.psbContextOrder = k; })));
        }
        row.push_back(pct(runSim(
            name, PaperConfig::ConfAllocPriority, opts, "tlbcache",
            [](SimConfig &cfg) {
                cfg.psb.buffers.cacheTlbTranslation = true;
            })));
        table.addRow(row);
    }
    table.print();
    std::puts("\npaper shape: higher-order prediction adds little over "
              "first order (§2.2);\nthe TLB-caching option is roughly "
              "performance-neutral because these\nworkloads have few "
              "TLB misses (§4.5).");
    return 0;
}
