/**
 * @file
 * Reproduces **Figure 6**: prefetch accuracy — prefetches used by the
 * processor divided by prefetches issued — for the five prefetching
 * configurations.
 */

#include <cstdio>

#include "common.hh"
#include "util/table_printer.hh"
#include "workloads/workload.hh"

int
main(int argc, char **argv)
{
    using namespace psb;
    using namespace psb::bench;
    BenchOptions opts = parseOptions(argc, argv);

    std::puts("=== Figure 6: prefetch accuracy (used / issued) ===\n");

    const PaperConfig configs[] = {
        PaperConfig::PcStride, PaperConfig::TwoMissRR,
        PaperConfig::TwoMissPriority, PaperConfig::ConfAllocRR,
        PaperConfig::ConfAllocPriority,
    };

    TablePrinter table;
    table.addRow({"program", "PCStride", "2Miss-RR", "2Miss-Pri",
                  "ConfAlloc-RR", "ConfAlloc-Pri"});
    for (const std::string &name : workloadNames()) {
        std::vector<std::string> row{name};
        for (PaperConfig cfg : configs) {
            SimResult r = runSim(name, cfg, opts);
            row.push_back(
                TablePrinter::fmt(100.0 * r.prefetchAccuracy, 1) + "%");
        }
        table.addRow(row);
    }
    table.print();
    std::puts("\npaper shape: confidence allocation raises accuracy "
              "substantially on the\npointer programs (deltablue by "
              "almost 2x) by not wasting prefetches on\nunpredictable "
              "streams.");
    return 0;
}
