/**
 * @file
 * google-benchmark microbenchmarks of the hardware-model components:
 * per-operation cost of the cache tags, prediction tables, stream
 * buffers, branch predictor, and the end-to-end simulator (simulated
 * instructions per second). These bound how long the figure harnesses
 * take and catch accidental algorithmic regressions (e.g., a lookup
 * becoming O(table size)).
 */

#include <benchmark/benchmark.h>

#include "core/psb.hh"
#include "cpu/branch_predictor.hh"
#include "memory/cache.hh"
#include "memory/hierarchy.hh"
#include "predictors/sfm_predictor.hh"
#include "sim/simulator.hh"
#include "util/random.hh"
#include "workloads/workload.hh"

namespace
{

using namespace psb;

void
BM_CacheTouch(benchmark::State &state)
{
    SetAssocCache cache(CacheGeometry{32 * 1024, 4, 32});
    Xorshift64 rng(1);
    for (int i = 0; i < 1024; ++i)
        cache.insert(Addr(0x10000 + 32 * rng.below(4096)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.touch(Addr(0x10000 + 32 * rng.below(4096))));
    }
}
BENCHMARK(BM_CacheTouch);

void
BM_CacheInsertEvict(benchmark::State &state)
{
    SetAssocCache cache(CacheGeometry{32 * 1024, 4, 32});
    Addr addr{0x10000};
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.insert(addr));
        addr += 32;
    }
}
BENCHMARK(BM_CacheInsertEvict);

void
BM_StrideTableTrain(benchmark::State &state)
{
    StrideTable table;
    uint64_t pc = 0x400000, addr = 0x10000;
    for (auto _ : state) {
        benchmark::DoNotOptimize(table.train(Addr(pc), Addr(addr)));
        pc = 0x400000 + ((pc + 4) & 0x3ff);
        addr += 64;
    }
}
BENCHMARK(BM_StrideTableTrain);

void
BM_SfmTrain(benchmark::State &state)
{
    SfmPredictor sfm;
    Xorshift64 rng(2);
    for (auto _ : state)
        sfm.train(Addr(0x400000 + 4 * rng.below(64)),
                  Addr(rng.next() & 0xffffff));
}
BENCHMARK(BM_SfmTrain);

void
BM_SfmPredictNext(benchmark::State &state)
{
    SfmPredictor sfm;
    for (int i = 0; i < 4096; ++i)
        sfm.train(Addr{0x400000}, Addr(0x10000 + 64 * i));
    StreamState s = sfm.allocateStream(Addr{0x400000}, Addr{0x10000});
    for (auto _ : state)
        benchmark::DoNotOptimize(sfm.predictNext(s));
}
BENCHMARK(BM_SfmPredictNext);

void
BM_StreamBufferLookup(benchmark::State &state)
{
    StreamBufferConfig cfg;
    StreamBufferFile file(cfg);
    for (unsigned b = 0; b < cfg.numBuffers; ++b) {
        file.buffer(b).allocateStream(StreamState{}, 5);
        for (unsigned e = 0; e < cfg.entriesPerBuffer; ++e) {
            file.buffer(b).fillEntry(
                int(e),
                BlockAddr(0x800 + b * 4 + e)); // byte 0x10000 + 32 * n
        }
    }
    Xorshift64 rng(3);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            file.findBlock(BlockAddr(0x800 + rng.below(64))));
    }
}
BENCHMARK(BM_StreamBufferLookup);

void
BM_GshareUpdate(benchmark::State &state)
{
    GsharePredictor bp;
    Xorshift64 rng(4);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            bp.update(Addr(0x400000 + 4 * rng.below(256)),
                      (rng.next() & 1) != 0, Addr{0x400800}));
    }
}
BENCHMARK(BM_GshareUpdate);

void
BM_HierarchyDemandMiss(benchmark::State &state)
{
    MemoryConfig cfg;
    cfg.tlbMissPenalty = CycleDelta{};
    MemoryHierarchy hier(cfg);
    Addr addr{0x10000};
    Cycle now{};
    for (auto _ : state) {
        benchmark::DoNotOptimize(hier.missToL2(addr, now, false));
        addr += 4096;
        now += CycleDelta{1000};
    }
}
BENCHMARK(BM_HierarchyDemandMiss);

/** End-to-end: simulated instructions per wall-clock second. */
void
BM_SimulatorEndToEnd(benchmark::State &state)
{
    for (auto _ : state) {
        auto trace = makeWorkload("health");
        SimConfig cfg = makePaperConfig(PaperConfig::ConfAllocPriority);
        cfg.warmupInstructions = 0;
        cfg.maxInstructions = 50'000;
        Simulator sim(cfg, *trace);
        benchmark::DoNotOptimize(sim.run());
    }
    state.SetItemsProcessed(int64_t(state.iterations()) * 50'000);
}
BENCHMARK(BM_SimulatorEndToEnd)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
