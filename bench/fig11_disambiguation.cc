/**
 * @file
 * Reproduces **Figure 11**: IPC with and without perfect store sets
 * (perfect memory disambiguation), for the baseline and the
 * ConfAlloc-Priority PSB. Also reports the learned store-set
 * predictor (an extension beyond the paper) as a middle point.
 */

#include <cstdio>

#include "common.hh"
#include "util/table_printer.hh"
#include "workloads/workload.hh"

int
main(int argc, char **argv)
{
    using namespace psb;
    using namespace psb::bench;
    BenchOptions opts = parseOptions(argc, argv);

    std::puts("=== Figure 11: IPC with/without perfect disambiguation "
              "===\n");

    auto nodis = [](SimConfig &cfg) {
        cfg.core.disambiguation = DisambiguationMode::None;
    };
    auto learned = [](SimConfig &cfg) {
        cfg.core.disambiguation = DisambiguationMode::Learned;
    };

    TablePrinter table;
    table.addRow({"program", "Base-NoDis", "Base-Learned", "Base-Dis",
                  "PSB-NoDis", "PSB-Dis"});
    for (const std::string &name : workloadNames()) {
        SimResult base_nodis =
            runSim(name, PaperConfig::Base, opts, "nodis", nodis);
        SimResult base_learned =
            runSim(name, PaperConfig::Base, opts, "learned", learned);
        SimResult base_dis = runSim(name, PaperConfig::Base, opts);
        SimResult psb_nodis = runSim(name, PaperConfig::ConfAllocPriority,
                                     opts, "nodis", nodis);
        SimResult psb_dis =
            runSim(name, PaperConfig::ConfAllocPriority, opts);
        table.addRow({name, TablePrinter::fmt(base_nodis.ipc, 3),
                      TablePrinter::fmt(base_learned.ipc, 3),
                      TablePrinter::fmt(base_dis.ipc, 3),
                      TablePrinter::fmt(psb_nodis.ipc, 3),
                      TablePrinter::fmt(psb_dis.ipc, 3)});
    }
    table.print();
    std::puts("\npaper shape: perfect store sets help the baseline "
              "noticeably only on a\ncouple of programs and add little "
              "once prefetching is on; the learned\npredictor (our "
              "extension) sits between NoDis and perfect.");
    return 0;
}
