/**
 * @file
 * Reproduces **Figure 8**: average load latency in cycles for the
 * baseline and the five prefetching configurations.
 */

#include <cstdio>

#include "common.hh"
#include "util/table_printer.hh"
#include "workloads/workload.hh"

int
main(int argc, char **argv)
{
    using namespace psb;
    using namespace psb::bench;
    BenchOptions opts = parseOptions(argc, argv);

    std::puts("=== Figure 8: average load latency (cycles) ===\n");

    TablePrinter table;
    table.addRow({"program", "Base", "PCStride", "2Miss-RR",
                  "2Miss-Pri", "ConfAlloc-RR", "ConfAlloc-Pri"});
    for (const std::string &name : workloadNames()) {
        std::vector<std::string> row{name};
        for (PaperConfig cfg : paperConfigs) {
            SimResult r = runSim(name, cfg, opts);
            row.push_back(TablePrinter::fmt(r.avgLoadLatency, 2));
        }
        table.addRow(row);
    }
    table.print();
    std::puts("\npaper shape: multiple cycles of average load latency "
              "removed on the pointer\nprograms (the paper reports 4 "
              "cycles for deltablue, 3 for burg).");
    return 0;
}
