#include "common.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>

#include "sim/sweep.hh"
#include "util/logging.hh"
#include "workloads/workload.hh"

namespace psb::bench
{

namespace
{

constexpr const char *cacheFile = "psb_bench_cache.tsv";

/**
 * Bump when simulator or workload *behaviour* changes so stale cached
 * results are never mixed with fresh ones (or simply delete the cache
 * file). Configuration changes — new defaults, different tweaks, a
 * resized machine — are caught automatically by the config
 * fingerprint in every cache key (configFingerprint()); the version
 * only needs a bump when identical configs start producing different
 * numbers.
 */
constexpr const char *cacheVersion = "v4";

/** The numbers the harnesses consume, in serialisation order. */
struct CacheRecord
{
    double values[16] = {};
};

CacheRecord
toRecord(const SimResult &r)
{
    CacheRecord rec;
    rec.values[0] = double(r.core.instructions);
    rec.values[1] = double(r.core.cycles);
    rec.values[2] = r.ipc;
    rec.values[3] = r.l1dMissRate;
    rec.values[4] = r.avgLoadLatency;
    rec.values[5] = r.prefetchAccuracy;
    rec.values[6] = r.l1L2BusUtil;
    rec.values[7] = r.l2MemBusUtil;
    rec.values[8] = r.pctLoads;
    rec.values[9] = r.pctStores;
    rec.values[10] = double(r.prefetch.prefetchesIssued);
    rec.values[11] = double(r.prefetch.prefetchesUsed);
    rec.values[12] = double(r.core.sbServiced);
    rec.values[13] = double(r.core.l1dMisses);
    rec.values[14] = double(r.core.mispredicts);
    rec.values[15] = double(r.tlbMisses);
    return rec;
}

SimResult
fromRecord(const CacheRecord &rec)
{
    SimResult r;
    r.core.instructions = uint64_t(rec.values[0]);
    r.core.cycles = uint64_t(rec.values[1]);
    r.ipc = rec.values[2];
    r.l1dMissRate = rec.values[3];
    r.avgLoadLatency = rec.values[4];
    r.prefetchAccuracy = rec.values[5];
    r.l1L2BusUtil = rec.values[6];
    r.l2MemBusUtil = rec.values[7];
    r.pctLoads = rec.values[8];
    r.pctStores = rec.values[9];
    r.prefetch.prefetchesIssued = uint64_t(rec.values[10]);
    r.prefetch.prefetchesUsed = uint64_t(rec.values[11]);
    r.core.sbServiced = uint64_t(rec.values[12]);
    r.core.l1dMisses = uint64_t(rec.values[13]);
    r.core.mispredicts = uint64_t(rec.values[14]);
    r.tlbMisses = uint64_t(rec.values[15]);
    return r;
}

std::map<std::string, CacheRecord> &
cache()
{
    static std::map<std::string, CacheRecord> instance;
    static bool loaded = false;
    if (!loaded) {
        loaded = true;
        std::ifstream in(cacheFile);
        std::string line;
        while (std::getline(in, line)) {
            std::istringstream fields(line);
            std::string key;
            if (!std::getline(fields, key, '\t'))
                continue;
            CacheRecord rec;
            bool ok = true;
            for (double &v : rec.values) {
                std::string cell;
                if (!std::getline(fields, cell, '\t')) {
                    ok = false;
                    break;
                }
                v = std::strtod(cell.c_str(), nullptr);
            }
            if (ok)
                instance[key] = rec;
        }
    }
    return instance;
}

/** The tab-separated %.17g cell list shared by the cache file and
 *  the sweep-job payloads (deterministic round trip). */
std::string
recordCells(const CacheRecord &rec)
{
    std::string cells;
    char buf[32];
    for (double v : rec.values) {
        std::snprintf(buf, sizeof(buf), "%.17g", v);
        cells += '\t';
        cells += buf;
    }
    return cells;
}

bool
parseRecordCells(const std::string &cells, CacheRecord &rec)
{
    std::istringstream fields(cells);
    std::string lead;
    if (!std::getline(fields, lead, '\t')) // text before first tab
        return false;
    for (double &v : rec.values) {
        std::string cell;
        if (!std::getline(fields, cell, '\t'))
            return false;
        v = std::strtod(cell.c_str(), nullptr);
    }
    return true;
}

void
appendToCacheFile(const std::string &key, const CacheRecord &rec)
{
    std::ofstream out(cacheFile, std::ios::app);
    out << key << recordCells(rec) << '\n';
}

/** The fully-tweaked, harmonized configuration a request will run. */
SimConfig
effectiveConfig(const SimRequest &req, const BenchOptions &opts)
{
    SimConfig cfg = makePaperConfig(req.config);
    cfg.warmupInstructions = opts.warmup;
    cfg.maxInstructions = opts.instructions;
    if (req.tweak)
        req.tweak(cfg);
    cfg.harmonize();
    return cfg;
}

/** The simulation behind one matrix cell, run on a worker thread:
 *  fully shared-nothing (own trace, config, simulator, registry). */
JobOutcome
simulateCell(const SimRequest &req, const BenchOptions &opts)
{
    JobOutcome out;
    auto trace = makeWorkload(req.workload);
    if (!trace) {
        out.error = "unknown workload '" + req.workload + "'";
        return out;
    }
    Simulator sim(effectiveConfig(req, opts), *trace);
    out.ok = true;
    out.payload = recordCells(toRecord(sim.run()));
    return out;
}

} // namespace

BenchOptions
parseOptions(int argc, char **argv)
{
    BenchOptions opts;
    if (const char *env = std::getenv("PSB_BENCH_INSTS"))
        opts.instructions = std::strtoull(env, nullptr, 10);
    if (const char *env = std::getenv("PSB_BENCH_WARMUP"))
        opts.warmup = std::strtoull(env, nullptr, 10);
    if (const char *env = std::getenv("PSB_BENCH_JOBS"))
        opts.jobs = unsigned(std::strtoul(env, nullptr, 10));
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--insts") == 0)
            opts.instructions = std::strtoull(argv[i + 1], nullptr, 10);
        if (std::strcmp(argv[i], "--warmup") == 0)
            opts.warmup = std::strtoull(argv[i + 1], nullptr, 10);
        if (std::strcmp(argv[i], "--jobs") == 0)
            opts.jobs = unsigned(std::strtoul(argv[i + 1], nullptr, 10));
    }
    if (opts.jobs == 0)
        opts.jobs = 1;
    return opts;
}

SimResult
runSim(const std::string &workload, PaperConfig config,
       const BenchOptions &opts, const std::string &variant,
       const std::function<void(SimConfig &)> &tweak)
{
    BenchOptions serial = opts;
    serial.jobs = 1; // a single cell gains nothing from workers
    return runSims({{workload, config, variant, tweak}}, serial)[0];
}

std::vector<SimResult>
runSims(const std::vector<SimRequest> &requests,
        const BenchOptions &opts)
{
    std::vector<std::string> keys;
    keys.reserve(requests.size());
    // Key-sorted and deduplicated: a matrix may name a cell twice
    // (e.g. the baseline column), but it must simulate once.
    std::map<std::string, const SimRequest *> missing;
    for (const SimRequest &req : requests) {
        keys.push_back(cacheKey(req, opts));
        if (!cache().count(keys.back()))
            missing.emplace(keys.back(), &req);
    }

    if (!missing.empty()) {
        std::vector<SweepJob> sweepJobs;
        sweepJobs.reserve(missing.size());
        for (const auto &[key, req] : missing) {
            SweepJob job;
            job.key = key;
            job.run = [req = *req, opts](const JobContext &) {
                return simulateCell(req, opts);
            };
            sweepJobs.push_back(std::move(job));
        }

        SweepOptions sweepOpts;
        sweepOpts.jobs = opts.jobs;
        SweepEngine engine(sweepOpts);
        std::vector<JobResult> done = engine.run(sweepJobs);

        // Only this (the calling) thread touches the cache map and
        // the cache file; `done` is key-sorted so the file order is
        // independent of completion order.
        for (const JobResult &r : done) {
            if (r.status != JobStatus::Ok)
                fatal("bench job '%s' failed: %s", r.key.c_str(),
                      r.error.c_str());
            CacheRecord rec;
            if (!parseRecordCells(r.payload, rec))
                fatal("bench job '%s' returned a malformed record",
                      r.key.c_str());
            cache()[r.key] = rec;
            appendToCacheFile(r.key, rec);
        }
    }

    std::vector<SimResult> results;
    results.reserve(requests.size());
    for (const std::string &key : keys)
        results.push_back(fromRecord(cache().at(key)));
    return results;
}

double
speedupPct(double ipc, double base_ipc)
{
    return base_ipc > 0.0 ? 100.0 * (ipc / base_ipc - 1.0) : 0.0;
}

std::string
configFingerprint(const SimConfig &cfg)
{
    // Canonical name=value dump of every field that can change a
    // simulation's numbers. When a SimConfig field is added it must be
    // appended here, or two binaries differing only in that field will
    // share cache rows; the cacheVersion constant remains the backstop
    // for behaviour changes the configuration cannot express.
    std::ostringstream dump;
    const CoreConfig &core = cfg.core;
    dump << "fw=" << core.fetchWidth << ";iw=" << core.issueWidth
         << ";cw=" << core.commitWidth
         << ";bpf=" << core.maxBranchesPerFetch
         << ";rob=" << core.robEntries << ";lsq=" << core.lsqEntries
         << ";mp=" << core.mispredictPenalty.raw()
         << ";sf=" << core.storeForwardLatency.raw()
         << ";dis=" << int(core.disambiguation)
         << ";gh=" << core.gshare.historyBits
         << ";btb=" << core.gshare.btbEntries << '/'
         << core.gshare.btbAssoc << ";fu=" << core.numIntAlu << '/'
         << core.numLdSt << '/' << core.numFpAdd << '/'
         << core.numIntMulDiv << '/' << core.numFpMulDiv;
    const MemoryConfig &mem = cfg.memory;
    auto geom = [&dump](const char *name, const CacheGeometry &g) {
        dump << ';' << name << '=' << g.sizeBytes << '/' << g.assoc
             << '/' << g.blockBytes;
    };
    geom("l1d", mem.l1d);
    geom("l1i", mem.l1i);
    geom("l2", mem.l2);
    dump << ";l1l=" << mem.l1Latency.raw()
         << ";l2l=" << mem.l2Latency.raw() << '/'
         << mem.l2PipelineDepth << ";ml=" << mem.memLatency.raw()
         << '/' << mem.memIssueInterval.raw()
         << ";bus=" << mem.l1L2BusBytesPerCycle << '/'
         << mem.l2MemBusBytesPerCycle << ";mshr=" << mem.l1dMshrs
         << '/' << mem.l1iMshrs << ";tlb=" << mem.tlbEntries << '/'
         << mem.pageBytes << '/' << mem.tlbMissPenalty.raw();
    dump << ";pf=" << int(cfg.prefetcher);
    const StreamBufferConfig &sb = cfg.psb.buffers;
    dump << ";sb=" << sb.numBuffers << '/' << sb.entriesPerBuffer
         << '/' << sb.blockBytes << '/' << sb.priorityMax << '/'
         << sb.priorityHitIncrement << '/' << sb.agingPeriod << '/'
         << sb.allocConfThreshold << '/' << sb.cacheTlbTranslation
         << ";alloc=" << int(cfg.psb.alloc)
         << ";sched=" << int(cfg.psb.sched);
    auto stride = [&dump](const char *name,
                          const StrideTableConfig &st) {
        dump << ';' << name << '=' << st.entries << '/' << st.assoc
             << '/' << st.blockBytes << '/' << st.confidenceMax;
    };
    stride("sfmst", cfg.sfm.stride);
    stride("st", cfg.stride);
    const DiffMarkovConfig &markov = cfg.sfm.markov;
    dump << ";mk=" << markov.entries << '/' << markov.blockBytes << '/'
         << markov.deltaBits << '/' << markov.tagBits
         << ";mode=" << int(cfg.sfm.mode)
         << ";order=" << cfg.psbContextOrder
         << ";warm=" << cfg.warmupInstructions
         << ";insts=" << cfg.maxInstructions
         << ";ff=" << cfg.fastForward;

    // FNV-1a, 64-bit.
    uint64_t hash = 14695981039346656037ull;
    for (unsigned char c : dump.str()) {
        hash ^= c;
        hash *= 1099511628211ull;
    }
    char hex[17];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  (unsigned long long)hash);
    return hex;
}

std::string
cacheKey(const SimRequest &req, const BenchOptions &opts)
{
    std::ostringstream key;
    key << cacheVersion << '|' << req.workload << '|'
        << paperConfigName(req.config) << '|' << opts.warmup << '|'
        << opts.instructions << '|' << req.variant << '|'
        << configFingerprint(effectiveConfig(req, opts));
    return key.str();
}

} // namespace psb::bench
