#include "common.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>

#include "util/logging.hh"
#include "workloads/workload.hh"

namespace psb::bench
{

namespace
{

constexpr const char *cacheFile = "psb_bench_cache.tsv";

/**
 * Bump when simulator or workload behaviour changes so stale cached
 * results are never mixed with fresh ones (or simply delete the cache
 * file).
 */
constexpr const char *cacheVersion = "v3";

/** The numbers the harnesses consume, in serialisation order. */
struct CacheRecord
{
    double values[16] = {};
};

CacheRecord
toRecord(const SimResult &r)
{
    CacheRecord rec;
    rec.values[0] = double(r.core.instructions);
    rec.values[1] = double(r.core.cycles);
    rec.values[2] = r.ipc;
    rec.values[3] = r.l1dMissRate;
    rec.values[4] = r.avgLoadLatency;
    rec.values[5] = r.prefetchAccuracy;
    rec.values[6] = r.l1L2BusUtil;
    rec.values[7] = r.l2MemBusUtil;
    rec.values[8] = r.pctLoads;
    rec.values[9] = r.pctStores;
    rec.values[10] = double(r.prefetch.prefetchesIssued);
    rec.values[11] = double(r.prefetch.prefetchesUsed);
    rec.values[12] = double(r.core.sbServiced);
    rec.values[13] = double(r.core.l1dMisses);
    rec.values[14] = double(r.core.mispredicts);
    rec.values[15] = double(r.tlbMisses);
    return rec;
}

SimResult
fromRecord(const CacheRecord &rec)
{
    SimResult r;
    r.core.instructions = uint64_t(rec.values[0]);
    r.core.cycles = uint64_t(rec.values[1]);
    r.ipc = rec.values[2];
    r.l1dMissRate = rec.values[3];
    r.avgLoadLatency = rec.values[4];
    r.prefetchAccuracy = rec.values[5];
    r.l1L2BusUtil = rec.values[6];
    r.l2MemBusUtil = rec.values[7];
    r.pctLoads = rec.values[8];
    r.pctStores = rec.values[9];
    r.prefetch.prefetchesIssued = uint64_t(rec.values[10]);
    r.prefetch.prefetchesUsed = uint64_t(rec.values[11]);
    r.core.sbServiced = uint64_t(rec.values[12]);
    r.core.l1dMisses = uint64_t(rec.values[13]);
    r.core.mispredicts = uint64_t(rec.values[14]);
    r.tlbMisses = uint64_t(rec.values[15]);
    return r;
}

std::map<std::string, CacheRecord> &
cache()
{
    static std::map<std::string, CacheRecord> instance;
    static bool loaded = false;
    if (!loaded) {
        loaded = true;
        std::ifstream in(cacheFile);
        std::string line;
        while (std::getline(in, line)) {
            std::istringstream fields(line);
            std::string key;
            if (!std::getline(fields, key, '\t'))
                continue;
            CacheRecord rec;
            bool ok = true;
            for (double &v : rec.values) {
                std::string cell;
                if (!std::getline(fields, cell, '\t')) {
                    ok = false;
                    break;
                }
                v = std::strtod(cell.c_str(), nullptr);
            }
            if (ok)
                instance[key] = rec;
        }
    }
    return instance;
}

void
appendToCacheFile(const std::string &key, const CacheRecord &rec)
{
    std::ofstream out(cacheFile, std::ios::app);
    out << key;
    char buf[32];
    for (double v : rec.values) {
        std::snprintf(buf, sizeof(buf), "%.17g", v);
        out << '\t' << buf;
    }
    out << '\n';
}

} // namespace

BenchOptions
parseOptions(int argc, char **argv)
{
    BenchOptions opts;
    if (const char *env = std::getenv("PSB_BENCH_INSTS"))
        opts.instructions = std::strtoull(env, nullptr, 10);
    if (const char *env = std::getenv("PSB_BENCH_WARMUP"))
        opts.warmup = std::strtoull(env, nullptr, 10);
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--insts") == 0)
            opts.instructions = std::strtoull(argv[i + 1], nullptr, 10);
        if (std::strcmp(argv[i], "--warmup") == 0)
            opts.warmup = std::strtoull(argv[i + 1], nullptr, 10);
    }
    return opts;
}

SimResult
runSim(const std::string &workload, PaperConfig config,
       const BenchOptions &opts, const std::string &variant,
       const std::function<void(SimConfig &)> &tweak)
{
    std::ostringstream key;
    key << cacheVersion << '|' << workload << '|'
        << paperConfigName(config) << '|' << opts.warmup << '|'
        << opts.instructions << '|' << variant;

    auto it = cache().find(key.str());
    if (it != cache().end())
        return fromRecord(it->second);

    auto trace = makeWorkload(workload);
    if (!trace)
        fatal("unknown workload '%s'", workload.c_str());

    SimConfig cfg = makePaperConfig(config);
    cfg.warmupInstructions = opts.warmup;
    cfg.maxInstructions = opts.instructions;
    if (tweak)
        tweak(cfg);
    cfg.harmonize();

    Simulator sim(cfg, *trace);
    SimResult result = sim.run();

    CacheRecord rec = toRecord(result);
    cache()[key.str()] = rec;
    appendToCacheFile(key.str(), rec);
    return fromRecord(rec);
}

double
speedupPct(double ipc, double base_ipc)
{
    return base_ipc > 0.0 ? 100.0 * (ipc / base_ipc - 1.0) : 0.0;
}

} // namespace psb::bench
