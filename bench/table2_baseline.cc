/**
 * @file
 * Reproduces **Table 2**: baseline (no-prefetch) characterisation of
 * every workload — instructions simulated, L1 data-cache miss rate,
 * percent loads/stores, IPC, and the utilisation of the L1-L2 and
 * L2-memory buses.
 */

#include <cstdio>

#include "common.hh"
#include "util/table_printer.hh"
#include "workloads/workload.hh"

int
main(int argc, char **argv)
{
    using namespace psb;
    using namespace psb::bench;
    BenchOptions opts = parseOptions(argc, argv);

    std::puts("=== Table 2: baseline characterisation ===");
    std::printf("(measured region: %llu instructions after %llu warmup)\n\n",
                (unsigned long long)opts.instructions,
                (unsigned long long)opts.warmup);

    TablePrinter table;
    table.addRow({"program", "#inst (M)", "L1D MR", "%lds", "%sts",
                  "IPC", "L1-L2 %bus", "L2-M %bus"});
    for (const std::string &name : workloadNames()) {
        SimResult r = runSim(name, PaperConfig::Base, opts);
        table.addRow({name,
                      TablePrinter::fmt(double(r.core.instructions) / 1e6,
                                        2),
                      TablePrinter::fmt(r.l1dMissRate, 4),
                      TablePrinter::fmt(r.pctLoads, 1),
                      TablePrinter::fmt(r.pctStores, 1),
                      TablePrinter::fmt(r.ipc, 3),
                      TablePrinter::fmt(100.0 * r.l1L2BusUtil, 1),
                      TablePrinter::fmt(100.0 * r.l2MemBusUtil, 1)});
    }
    table.print();
    std::puts("\npaper shape: pointer programs (health..sis) show "
              "substantial L1D miss\nrates and sub-peak IPC; turb3d is "
              "the FP/stride representative.");
    return 0;
}
