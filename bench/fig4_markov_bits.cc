/**
 * @file
 * Reproduces **Figure 4**: the percent of L1 cache misses that the
 * Markov *difference* predictor can predict correctly as a function
 * of the bits used for each table entry.
 *
 * Method (mirrors the paper's predictor structure): the committed
 * load-miss stream of each workload is captured once from a baseline
 * simulation; for every delta width, the stream is replayed through a
 * stride-filtered differential Markov predictor of that width, and
 * the fraction of misses whose next-miss prediction (stride OR
 * Markov) is correct is reported. Deltas that do not fit the entry
 * width simply cannot be stored — the coverage loss the figure
 * quantifies.
 */

#include <cstdio>
#include <map>
#include <vector>

#include "common.hh"
#include "predictors/sfm_predictor.hh"
#include "sim/simulator.hh"
#include "util/table_printer.hh"
#include "workloads/workload.hh"

namespace
{

using namespace psb;

/** One recorded miss. */
struct Miss
{
    Addr pc;
    Addr addr;
};

std::vector<Miss>
captureMissStream(const std::string &workload,
                  const psb::bench::BenchOptions &opts)
{
    auto trace = makeWorkload(workload);
    SimConfig cfg = makePaperConfig(PaperConfig::Base);
    cfg.warmupInstructions = opts.warmup;
    cfg.maxInstructions = opts.instructions;
    Simulator sim(cfg, *trace);
    std::vector<Miss> stream;
    stream.reserve(1 << 20);
    sim.setMissHook([&](Addr pc, Addr addr) {
        stream.push_back({pc, addr});
    });
    sim.run();
    return stream;
}

/** Fraction of misses predicted with a given Markov delta width. */
double
coverageAtWidth(const std::vector<Miss> &stream, unsigned delta_bits)
{
    SfmConfig cfg;
    cfg.markov.deltaBits = delta_bits;
    SfmPredictor sfm(cfg);
    // Chase one one-entry "stream" per PC, exactly like a buffer that
    // re-allocates on every miss: predict the next miss, then train.
    std::map<Addr, StreamState> state;
    uint64_t predicted = 0, total = 0;
    for (const Miss &miss : stream) {
        BlockAddr block = miss.addr.toBlock(5); // 32-byte lines
        auto it = state.find(miss.pc);
        if (it != state.end()) {
            ++total;
            StreamState s = it->second;
            auto p = sfm.predictNext(s);
            if (p && *p == block)
                ++predicted;
        }
        sfm.train(miss.pc, miss.addr);
        state[miss.pc] = sfm.allocateStream(miss.pc, miss.addr);
    }
    return total ? double(predicted) / double(total) : 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace psb;
    using namespace psb::bench;
    BenchOptions opts = parseOptions(argc, argv);
    // The miss-stream capture is cheap; a shorter region suffices.
    if (opts.instructions > 500'000)
        opts.instructions = 500'000;

    std::puts("=== Figure 4: miss coverage vs Markov delta width ===\n");

    const unsigned widths[] = {8, 10, 12, 14, 16, 18, 20, 24, 32};

    TablePrinter table;
    {
        std::vector<std::string> header{"program"};
        for (unsigned w : widths)
            header.push_back(std::to_string(w) + "b");
        table.addRow(header);
    }
    for (const std::string &name : workloadNames()) {
        std::vector<Miss> stream = captureMissStream(name, opts);
        std::vector<std::string> row{name};
        for (unsigned w : widths) {
            row.push_back(
                TablePrinter::fmt(100.0 * coverageAtWidth(stream, w),
                                  1) + "%");
        }
        table.addRow(row);
    }
    table.print();
    std::puts("\npaper shape: coverage saturates by 16 bits — the "
              "basis for the 4KB\n(2K x 16-bit) differential Markov "
              "table.");
    return 0;
}
