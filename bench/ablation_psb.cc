/**
 * @file
 * Ablations of the PSB design choices DESIGN.md calls out, beyond the
 * paper's own sweep:
 *
 *  1. predictor choice inside the PSB (SFM vs stride-only vs
 *     Markov-only) — how much of the win is the hybrid;
 *  2. priority-counter aging period (paper uses 10 misses);
 *  3. confidence-allocation threshold (paper uses 1);
 *  4. stream-buffer geometry (buffers x entries; paper uses 8 x 4);
 *  5. Markov table size and delta width (paper: 2K x 16 bits).
 *
 * Run on the two most prefetch-sensitive pointer analogs plus the
 * thrash-prone one (health, burg, sis).
 */

#include <cstdio>

#include "common.hh"
#include "util/table_printer.hh"

namespace
{

using namespace psb;
using namespace psb::bench;

const char *const programs[] = {"health", "burg", "sis"};

void
predictorChoice(const BenchOptions &opts)
{
    std::puts("--- ablation 1: predictor directing the PSB ---");
    TablePrinter table;
    table.addRow({"program", "SFM (paper)", "stride-only",
                  "markov-only"});
    for (const char *name : programs) {
        SimResult base = runSim(name, PaperConfig::Base, opts);
        SimResult sfm =
            runSim(name, PaperConfig::ConfAllocPriority, opts);
        SimResult stride_only = runSim(
            name, PaperConfig::ConfAllocPriority, opts, "strideonly",
            [](SimConfig &cfg) { cfg.sfm.mode = SfmMode::StrideOnly; });
        SimResult markov_only = runSim(
            name, PaperConfig::ConfAllocPriority, opts, "markovonly",
            [](SimConfig &cfg) { cfg.sfm.mode = SfmMode::MarkovOnly; });
        auto pct = [&](const SimResult &r) {
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%+.1f%%",
                          speedupPct(r.ipc, base.ipc));
            return std::string(buf);
        };
        table.addRow({name, pct(sfm), pct(stride_only),
                      pct(markov_only)});
    }
    table.print();
    std::puts("expected: the hybrid at least matches either half "
              "alone.\n");
}

void
agingPeriod(const BenchOptions &opts)
{
    std::puts("--- ablation 2: priority aging period (paper: 10) ---");
    TablePrinter table;
    table.addRow({"program", "2", "5", "10", "20", "100"});
    for (const char *name : programs) {
        std::vector<std::string> row{name};
        for (unsigned period : {2u, 5u, 10u, 20u, 100u}) {
            SimResult r = runSim(
                name, PaperConfig::ConfAllocPriority, opts,
                "aging=" + std::to_string(period),
                [&](SimConfig &cfg) {
                    cfg.psb.buffers.agingPeriod = period;
                });
            row.push_back(TablePrinter::fmt(r.ipc, 3));
        }
        table.addRow(row);
    }
    table.print();
    std::puts("");
}

void
confThreshold(const BenchOptions &opts)
{
    std::puts("--- ablation 3: confidence allocation threshold "
              "(paper: 1) ---");
    TablePrinter table;
    table.addRow({"program", "0", "1", "3", "5", "7"});
    for (const char *name : programs) {
        std::vector<std::string> row{name};
        for (unsigned thr : {0u, 1u, 3u, 5u, 7u}) {
            SimResult r = runSim(
                name, PaperConfig::ConfAllocPriority, opts,
                "thr=" + std::to_string(thr), [&](SimConfig &cfg) {
                    cfg.psb.buffers.allocConfThreshold = thr;
                });
            row.push_back(TablePrinter::fmt(r.ipc, 3));
        }
        table.addRow(row);
    }
    table.print();
    std::puts("");
}

void
bufferGeometry(const BenchOptions &opts)
{
    std::puts("--- ablation 4: stream-buffer geometry (paper: 8x4) "
              "---");
    TablePrinter table;
    table.addRow({"program", "2x4", "4x4", "8x4", "16x4", "8x2",
                  "8x8"});
    for (const char *name : programs) {
        std::vector<std::string> row{name};
        const std::pair<unsigned, unsigned> shapes[] = {
            {2, 4}, {4, 4}, {8, 4}, {16, 4}, {8, 2}, {8, 8},
        };
        for (auto [bufs, entries] : shapes) {
            SimResult r = runSim(
                name, PaperConfig::ConfAllocPriority, opts,
                "geom=" + std::to_string(bufs) + "x" +
                    std::to_string(entries),
                [&, b = bufs, e = entries](SimConfig &cfg) {
                    cfg.psb.buffers.numBuffers = b;
                    cfg.psb.buffers.entriesPerBuffer = e;
                });
            row.push_back(TablePrinter::fmt(r.ipc, 3));
        }
        table.addRow(row);
    }
    table.print();
    std::puts("");
}

void
markovTable(const BenchOptions &opts)
{
    std::puts("--- ablation 5: Markov table size / delta width "
              "(paper: 2Kx16b) ---");
    TablePrinter table;
    table.addRow({"program", "512x16b", "2Kx16b", "8Kx16b", "2Kx8b",
                  "2Kx32b"});
    for (const char *name : programs) {
        std::vector<std::string> row{name};
        const std::pair<unsigned, unsigned> shapes[] = {
            {512, 16}, {2048, 16}, {8192, 16}, {2048, 8}, {2048, 32},
        };
        for (auto [entries, bits] : shapes) {
            SimResult r = runSim(
                name, PaperConfig::ConfAllocPriority, opts,
                "markov=" + std::to_string(entries) + "x" +
                    std::to_string(bits),
                [&, n = entries, b = bits](SimConfig &cfg) {
                    cfg.sfm.markov.entries = n;
                    cfg.sfm.markov.deltaBits = b;
                });
            row.push_back(TablePrinter::fmt(r.ipc, 3));
        }
        table.addRow(row);
    }
    table.print();
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opts = parseOptions(argc, argv);
    // Ablations trade region length for breadth.
    if (opts.instructions > 500'000)
        opts.instructions = 500'000;

    std::puts("=== PSB design-choice ablations ===\n");
    predictorChoice(opts);
    agingPeriod(opts);
    confThreshold(opts);
    bufferGeometry(opts);
    markovTable(opts);
    return 0;
}
