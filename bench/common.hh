/**
 * @file
 * Shared infrastructure for the figure/table reproduction harnesses:
 * a simulation runner with a persistent result cache, so the five
 * figure binaries that share the same 6-workload x 6-configuration
 * matrix (Figures 5-9) only simulate it once per parameter set.
 *
 * Region lengths default to 250k warm-up + 1M measured instructions
 * per simulation; override with --insts N / --warmup N or the
 * PSB_BENCH_INSTS / PSB_BENCH_WARMUP environment variables (the paper
 * simulated hundreds of millions of instructions per run — see
 * DESIGN.md §4 on why the synthetic workloads reach steady state much
 * sooner).
 */

#ifndef PSB_BENCH_COMMON_HH
#define PSB_BENCH_COMMON_HH

#include <functional>
#include <string>
#include <vector>

#include "sim/simulator.hh"

namespace psb::bench
{

/** Region lengths for every simulation a harness runs. */
struct BenchOptions
{
    uint64_t warmup = 250'000;
    uint64_t instructions = 1'000'000;
    /** Worker threads for runSims() batches (--jobs/PSB_BENCH_JOBS). */
    unsigned jobs = 1;
};

/** Parse --insts/--warmup/--jobs plus the corresponding env vars. */
BenchOptions parseOptions(int argc, char **argv);

/** One cell of a figure's simulation matrix (see runSims). */
struct SimRequest
{
    std::string workload;
    PaperConfig config;
    /** Extra cache key naming what @c tweak does; "" for stock. */
    std::string variant = "";
    std::function<void(SimConfig &)> tweak = {};
};

/**
 * Run (or fetch from cache) one simulation.
 *
 * @param workload Benchmark analog name ("health", ...).
 * @param config One of the paper's six machine configurations.
 * @param opts Region lengths.
 * @param variant Extra cache-key describing any tweak (must uniquely
 *        name what @p tweak does); empty for the stock configuration.
 * @param tweak Optional mutation of the SimConfig before the run.
 */
SimResult runSim(const std::string &workload, PaperConfig config,
                 const BenchOptions &opts,
                 const std::string &variant = "",
                 const std::function<void(SimConfig &)> &tweak = {});

/**
 * Run a whole simulation matrix, cache-misses in parallel on the
 * sweep engine (sim/sweep.hh) with @c opts.jobs worker threads.
 *
 * Results come back in request order; duplicate cells are simulated
 * once. The persistent cache file is only ever written by the calling
 * thread, and the returned numbers are identical for every jobs
 * count (each simulation is shared-nothing; see DESIGN.md §10).
 * A figure driver calls this once with its full matrix to prewarm
 * the cache, then formats its table through runSim() cache hits.
 */
std::vector<SimResult> runSims(const std::vector<SimRequest> &requests,
                               const BenchOptions &opts);

/** Percent speedup of @p ipc over @p base_ipc. */
double speedupPct(double ipc, double base_ipc);

/**
 * Stable hex fingerprint of every simulation-relevant SimConfig field
 * (FNV-1a over a canonical field dump; call after harmonize()). Part
 * of each persistent-cache key, so a cached row can never be replayed
 * for a configuration that differs in any machine parameter — the
 * staleness the old name-only keys ("health|ConfAlloc-Priority|...")
 * could not detect when a config default or a tweak changed between
 * binary builds.
 */
std::string configFingerprint(const SimConfig &cfg);

/**
 * The persistent-cache key for one simulation request: cache version,
 * workload, paper-config name, region lengths, variant label, and the
 * fingerprint of the request's fully-tweaked, harmonized SimConfig.
 * Exposed for the cache-staleness regression test
 * (tests/test_bench_cache.cc).
 */
std::string cacheKey(const SimRequest &req, const BenchOptions &opts);

} // namespace psb::bench

#endif // PSB_BENCH_COMMON_HH
