/**
 * @file
 * Reproduces **Figure 10**: percent speedup of PC-stride stream
 * buffers and the ConfAlloc-Priority PSB over a same-cache baseline,
 * for 16K 4-way, 32K 2-way, and 32K 4-way L1 data caches.
 */

#include <cstdio>

#include "common.hh"
#include "util/table_printer.hh"
#include "workloads/workload.hh"

int
main(int argc, char **argv)
{
    using namespace psb;
    using namespace psb::bench;
    BenchOptions opts = parseOptions(argc, argv);

    std::puts("=== Figure 10: speedup across L1D cache geometries "
              "===\n");

    struct Geometry
    {
        const char *label;
        uint64_t size;
        unsigned assoc;
    };
    const Geometry geoms[] = {
        {"16K 4-way", 16 * 1024, 4},
        {"32K 2-way", 32 * 1024, 2},
        {"32K 4-way", 32 * 1024, 4},
    };

    // Prewarm every (workload, geometry, config) cell in parallel
    // (--jobs/PSB_BENCH_JOBS) before the serial table loop.
    const PaperConfig cellConfigs[] = {
        PaperConfig::Base, PaperConfig::PcStride,
        PaperConfig::ConfAllocPriority};
    std::vector<SimRequest> matrix;
    for (const std::string &name : workloadNames()) {
        for (const Geometry &g : geoms) {
            for (PaperConfig cfg : cellConfigs) {
                SimRequest req;
                req.workload = name;
                req.config = cfg;
                req.variant = std::string("l1d=") + g.label;
                req.tweak = [g](SimConfig &c) {
                    c.memory.l1d.sizeBytes = g.size;
                    c.memory.l1d.assoc = g.assoc;
                };
                matrix.push_back(std::move(req));
            }
        }
    }
    runSims(matrix, opts);

    TablePrinter table;
    table.addRow({"program", "L1D", "PCStride", "ConfAlloc-Pri"});
    for (const std::string &name : workloadNames()) {
        for (const Geometry &g : geoms) {
            auto tweak = [&](SimConfig &cfg) {
                cfg.memory.l1d.sizeBytes = g.size;
                cfg.memory.l1d.assoc = g.assoc;
            };
            std::string variant = std::string("l1d=") + g.label;
            SimResult base = runSim(name, PaperConfig::Base, opts,
                                    variant, tweak);
            SimResult pcs = runSim(name, PaperConfig::PcStride, opts,
                                   variant, tweak);
            SimResult cap = runSim(name, PaperConfig::ConfAllocPriority,
                                   opts, variant, tweak);
            char c1[32], c2[32];
            std::snprintf(c1, sizeof(c1), "%+.1f%%",
                          speedupPct(pcs.ipc, base.ipc));
            std::snprintf(c2, sizeof(c2), "%+.1f%%",
                          speedupPct(cap.ipc, base.ipc));
            table.addRow({name, g.label, c1, c2});
        }
    }
    table.print();
    std::puts("\npaper shape: \"the speedup obtained is independent of "
              "cache size over a\nreasonable set of configurations\" — "
              "each program's speedups stay in the\nsame band across "
              "the three geometries.");
    return 0;
}
