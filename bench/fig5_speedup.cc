/**
 * @file
 * Reproduces **Figure 5**: percent speedup over the no-prefetch
 * baseline for PC-stride stream buffers and the four PSB
 * configurations ({2Miss, ConfAlloc} x {RR, Priority}).
 */

#include <cstdio>

#include "common.hh"
#include "util/table_printer.hh"
#include "workloads/workload.hh"

int
main(int argc, char **argv)
{
    using namespace psb;
    using namespace psb::bench;
    BenchOptions opts = parseOptions(argc, argv);

    std::puts("=== Figure 5: percent speedup over baseline ===\n");

    const PaperConfig configs[] = {
        PaperConfig::PcStride, PaperConfig::TwoMissRR,
        PaperConfig::TwoMissPriority, PaperConfig::ConfAllocRR,
        PaperConfig::ConfAllocPriority,
    };

    // Prewarm the whole workload x config matrix in parallel
    // (--jobs/PSB_BENCH_JOBS); the table loop below then formats
    // from cache hits.
    std::vector<SimRequest> matrix;
    for (const std::string &name : workloadNames()) {
        matrix.push_back({name, PaperConfig::Base});
        for (PaperConfig cfg : configs)
            matrix.push_back({name, cfg});
    }
    runSims(matrix, opts);

    TablePrinter table;
    table.addRow({"program", "PCStride", "2Miss-RR", "2Miss-Pri",
                  "ConfAlloc-RR", "ConfAlloc-Pri"});
    double avg[5] = {};
    unsigned pointer_count = 0;
    double pointer_psb_vs_stride = 0.0;
    for (const std::string &name : workloadNames()) {
        SimResult base = runSim(name, PaperConfig::Base, opts);
        std::vector<std::string> row{name};
        unsigned i = 0;
        double stride_ipc = 0.0, cap_ipc = 0.0;
        for (PaperConfig cfg : configs) {
            SimResult r = runSim(name, cfg, opts);
            double pct = speedupPct(r.ipc, base.ipc);
            avg[i] += pct;
            if (cfg == PaperConfig::PcStride)
                stride_ipc = r.ipc;
            if (cfg == PaperConfig::ConfAllocPriority)
                cap_ipc = r.ipc;
            char cell[32];
            std::snprintf(cell, sizeof(cell), "%+.1f%%", pct);
            row.push_back(cell);
            ++i;
        }
        if (name != "turb3d") {
            ++pointer_count;
            pointer_psb_vs_stride += speedupPct(cap_ipc, stride_ipc);
        }
        table.addRow(row);
    }
    std::vector<std::string> avg_row{"average"};
    for (double a : avg) {
        char cell[32];
        std::snprintf(cell, sizeof(cell), "%+.1f%%",
                      a / double(workloadNames().size()));
        avg_row.push_back(cell);
    }
    table.addRow(avg_row);
    table.print();

    std::printf("\nConfAlloc-Priority vs PCStride, pointer programs: "
                "%+.1f%% average\n",
                pointer_psb_vs_stride / double(pointer_count));
    std::puts("paper shape: PSB beats PC-stride on the pointer "
              "programs (burg/deltablue\nby the largest margins); on "
              "turb3d PSB ~= PCStride; sis degrades under\n2Miss "
              "allocation and is rescued by confidence allocation.");
    return 0;
}
