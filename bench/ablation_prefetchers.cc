/**
 * @file
 * Prefetcher-family comparison beyond the paper's two contenders: the
 * historical designs of paper §3 (next-line, demand Markov, Jouppi
 * sequential buffers) against PC-stride buffers and the PSB, across
 * all six workloads. Quantifies how much of the PSB's win comes from
 * running ahead (vs the one-shot demand Markov prefetcher, which uses
 * the same kind of table without re-feeding predictions).
 */

#include <cstdio>

#include "common.hh"
#include "util/table_printer.hh"
#include "workloads/workload.hh"

int
main(int argc, char **argv)
{
    using namespace psb;
    using namespace psb::bench;
    BenchOptions opts = parseOptions(argc, argv);
    if (opts.instructions > 500'000)
        opts.instructions = 500'000;

    std::puts("=== prefetcher family comparison (speedup over base) "
              "===\n");

    struct Extra
    {
        const char *label;
        PrefetcherKind kind;
    };
    const Extra extras[] = {
        {"NextLine", PrefetcherKind::NextLine},
        {"MarkovDemand", PrefetcherKind::MarkovDemand},
        {"Sequential", PrefetcherKind::Sequential},
        {"MinDelta", PrefetcherKind::MinDelta},
    };

    TablePrinter table;
    table.addRow({"program", "NextLine", "MarkovDemand", "Sequential",
                  "MinDelta", "PCStride", "PSB(CA-Pri)"});
    for (const std::string &name : workloadNames()) {
        SimResult base = runSim(name, PaperConfig::Base, opts);
        std::vector<std::string> row{name};
        for (const Extra &e : extras) {
            SimResult r = runSim(
                name, PaperConfig::Base, opts,
                std::string("pf=") + e.label,
                [&](SimConfig &cfg) { cfg.prefetcher = e.kind; });
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%+.1f%%",
                          speedupPct(r.ipc, base.ipc));
            row.push_back(buf);
        }
        for (PaperConfig cfg :
             {PaperConfig::PcStride, PaperConfig::ConfAllocPriority}) {
            SimResult r = runSim(name, cfg, opts);
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%+.1f%%",
                          speedupPct(r.ipc, base.ipc));
            row.push_back(buf);
        }
        table.addRow(row);
    }
    table.print();
    std::puts("\nexpected: the one-shot demand Markov prefetcher "
              "captures the same\ntransitions as the PSB but cannot "
              "run ahead, so the PSB wins on the\npointer programs; "
              "the minimum-delta scheme is uniformly outperformed\nby "
              "PC-stride, as the paper found (its global per-chunk "
              "history is\nconfused by interleaved streams).");
    return 0;
}
