/**
 * @file
 * Reproduces **Figure 7**: data-cache miss rates (an access to a
 * block not resident in the cache counts as a miss, including blocks
 * still in flight) for the baseline and the five prefetching
 * configurations.
 */

#include <cstdio>

#include "common.hh"
#include "util/table_printer.hh"
#include "workloads/workload.hh"

int
main(int argc, char **argv)
{
    using namespace psb;
    using namespace psb::bench;
    BenchOptions opts = parseOptions(argc, argv);

    std::puts("=== Figure 7: L1D miss rate (in-flight counts as miss) "
              "===\n");

    // Prewarm the workload x config matrix in parallel
    // (--jobs/PSB_BENCH_JOBS) before the serial table loop.
    std::vector<SimRequest> matrix;
    for (const std::string &name : psb::workloadNames())
        for (PaperConfig cfg : paperConfigs)
            matrix.push_back({name, cfg});
    runSims(matrix, opts);

    TablePrinter table;
    table.addRow({"program", "Base", "PCStride", "2Miss-RR",
                  "2Miss-Pri", "ConfAlloc-RR", "ConfAlloc-Pri"});
    for (const std::string &name : psb::workloadNames()) {
        std::vector<std::string> row{name};
        for (PaperConfig cfg : paperConfigs) {
            SimResult r = runSim(name, cfg, opts);
            row.push_back(TablePrinter::fmt(r.l1dMissRate, 4));
        }
        table.addRow(row);
    }
    table.print();
    std::puts("\npaper shape: every prefetcher cuts the miss rate; the "
              "confidence-allocated\nPSB configurations cut it the "
              "most on the pointer programs.");
    return 0;
}
