/**
 * @file
 * Reproduces **Figure 9**: percent of cycles the L1-L2 bus and the
 * L2-memory bus were busy, for the baseline and the five prefetching
 * configurations.
 */

#include <cstdio>

#include "common.hh"
#include "util/table_printer.hh"
#include "workloads/workload.hh"

int
main(int argc, char **argv)
{
    using namespace psb;
    using namespace psb::bench;
    BenchOptions opts = parseOptions(argc, argv);

    std::puts("=== Figure 9: bus utilisation (L1-L2 / L2-mem, %) ===\n");

    TablePrinter table;
    table.addRow({"program", "Base", "PCStride", "2Miss-RR",
                  "2Miss-Pri", "ConfAlloc-RR", "ConfAlloc-Pri"});
    for (const std::string &name : workloadNames()) {
        std::vector<std::string> row{name};
        for (PaperConfig cfg : paperConfigs) {
            SimResult r = runSim(name, cfg, opts);
            row.push_back(TablePrinter::fmt(100.0 * r.l1L2BusUtil, 1) +
                          " / " +
                          TablePrinter::fmt(100.0 * r.l2MemBusUtil, 1));
        }
        table.addRow(row);
    }
    table.print();
    std::puts("\npaper shape: deltablue and health are the largest "
              "L1-L2 bandwidth consumers;\nwithout confidence, sis's "
              "thrashing prefetches inflate its bus utilisation.");
    return 0;
}
