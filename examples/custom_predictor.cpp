/**
 * @file
 * "Any address predictor can be used to guide the predicted prefetch
 * stream" (paper §7). This example writes a brand-new predictor —
 * an alternating two-stride predictor that handles A, A+s1, A+s1+s2,
 * A+2*s1+s2, ... patterns (ping-pong walks of a matrix) — plugs it
 * into the PSB, and compares it with the built-in predictors on a
 * workload with exactly that pattern.
 *
 * It demonstrates the full extension surface:
 *  - deriving from AddressPredictor (train / predictNext /
 *    allocateStream / confidence / twoMissFilterPass);
 *  - per-stream state carried in StreamState (the alternation phase
 *    bit lives in StreamState::historyToken);
 *  - constructing PredictorDirectedStreamBuffers around it directly,
 *    bypassing the SimConfig presets.
 */

#include <algorithm>
#include <cstdio>
#include <map>

#include "core/psb.hh"
#include "cpu/ooo_core.hh"
#include "memory/hierarchy.hh"
#include "predictors/address_predictor.hh"
#include "prefetch/stride_stream_buffers.hh"
#include "sim/simulator.hh"
#include "trace/trace_builder.hh"
#include "util/bitfield.hh"
#include "util/table_printer.hh"

namespace
{

using namespace psb;

/**
 * Alternating-stride predictor: learns two strides s1, s2 applied in
 * alternation. Per-PC state lives in a small map (a real design would
 * use a tagged table; the interface does not care).
 */
class AlternatingStridePredictor : public AddressPredictor
{
  public:
    explicit AlternatingStridePredictor(unsigned block_bytes = 32)
        : _lineBits(floorLog2(block_bytes))
    {}

    void
    train(Addr pc, Addr addr) override
    {
        BlockAddr block = addr.toBlock(_lineBits);
        Entry &e = _table[pc];
        if (e.touched) {
            BlockDelta stride = block - e.lastAddr;
            // Predicted-next uses the *older* stride (alternation).
            bool correct = (e.strideB == stride);
            e.conf = correct ? std::min(e.conf + 1, 7u)
                             : (e.conf ? e.conf - 1 : 0);
            e.prevCorrect = e.lastCorrect;
            e.lastCorrect = correct;
            e.strideB = e.strideA;
            e.strideA = stride;
        }
        e.lastAddr = block;
        e.touched = true;
    }

    std::optional<BlockAddr>
    predictNext(StreamState &state) const override
    {
        // Alternate between the two learned strides; the phase lives
        // in the per-stream history, the strides in the shared table.
        auto it = _table.find(state.loadPc);
        if (it == _table.end())
            return std::nullopt;
        BlockDelta s = state.historyToken ? it->second.strideA
                                          : it->second.strideB;
        state.historyToken = !state.historyToken; // flip phase
        state.lastAddr += s;
        return state.lastAddr;
    }

    StreamState
    allocateStream(Addr pc, Addr addr) const override
    {
        StreamState s;
        s.loadPc = pc;
        s.lastAddr = addr.toBlock(_lineBits);
        s.historyToken = 1; // phase bit: strideA next
        s.confidence = confidence(pc);
        return s;
    }

    uint32_t
    confidence(Addr pc) const override
    {
        auto it = _table.find(pc);
        return it == _table.end() ? 0 : it->second.conf;
    }

    bool
    twoMissFilterPass(Addr pc, Addr) const override
    {
        auto it = _table.find(pc);
        return it != _table.end() && it->second.lastCorrect &&
               it->second.prevCorrect;
    }

  private:
    struct Entry
    {
        BlockAddr lastAddr{};
        BlockDelta strideA{};
        BlockDelta strideB{};
        unsigned conf = 0;
        bool lastCorrect = false;
        bool prevCorrect = false;
        bool touched = false;
    };

    unsigned _lineBits;
    std::map<Addr, Entry> _table;
};

/** Ping-pong matrix walk: addr += 40KB, addr -= 39.875KB, repeat. */
class PingPongWalk : public TraceBuilder
{
  protected:
    bool
    step() override
    {
        constexpr int64_t s1 = 40 * 1024;
        constexpr int64_t s2 = -(40 * 1024 - 128);
        emitLoad(Addr{0x400000}, 1, _addr, 1);
        emitAlu(Addr{0x400004}, 2, 1, 2);
        emitAlu(Addr{0x400008}, 3, 2);
        emitBranch(Addr{0x40000c}, true, Addr{0x400000}, 2);
        _addr = Addr(uint64_t(int64_t(_addr.raw()) +
                              (_phase ? s2 : s1)));
        _phase = !_phase;
        if (_addr > Addr{0x18000000} || _addr < Addr{0x10000000}) {
            _addr = Addr{0x10000000};
            _phase = false;
        }
        return true;
    }

  private:
    Addr _addr{0x10000000};
    bool _phase = false;
};

SimResult
simulate(Prefetcher &prefetcher, MemoryHierarchy &hierarchy)
{
    PingPongWalk trace;
    CoreConfig core_cfg;
    OoOCore core(core_cfg, hierarchy, prefetcher, trace);

    Cycle now{};
    while (core.stats().instructions < 200'000) {
        core.tick(now);
        prefetcher.tick(now);
        ++now;
    }
    core.resetStats();
    hierarchy.resetStats();
    prefetcher.resetStats();
    while (core.stats().instructions < 600'000) {
        core.tick(now);
        prefetcher.tick(now);
        ++now;
    }

    SimResult r;
    r.core = core.stats();
    r.prefetch = prefetcher.stats();
    r.ipc = r.core.ipc();
    r.avgLoadLatency = r.core.loadLatency.mean();
    r.prefetchAccuracy = r.prefetch.accuracy();
    return r;
}

} // namespace

int
main()
{
    TablePrinter table;
    table.addRow({"prefetcher", "IPC", "avg load lat", "accuracy"});

    auto add = [&](const char *label, const SimResult &r) {
        table.addRow({label, TablePrinter::fmt(r.ipc, 3),
                      TablePrinter::fmt(r.avgLoadLatency, 2),
                      TablePrinter::fmt(100.0 * r.prefetchAccuracy, 1) +
                          "%"});
    };

    MemoryConfig mem_cfg;

    { // Baseline.
        MemoryHierarchy hier(mem_cfg);
        NullPrefetcher none;
        add("none", simulate(none, hier));
    }
    { // PC-stride buffers: a two-delta stride cannot track the
      // alternation (the stride never repeats twice in a row).
        MemoryHierarchy hier(mem_cfg);
        StrideStreamBuffers stride({}, {}, hier);
        add("PC-stride SB", simulate(stride, hier));
    }
    { // PSB directed by the custom alternating-stride predictor.
        MemoryHierarchy hier(mem_cfg);
        AlternatingStridePredictor predictor;
        PsbConfig psb_cfg;
        PredictorDirectedStreamBuffers psb(psb_cfg, predictor, hier);
        add("PSB + AlternatingStride", simulate(psb, hier));
    }

    std::puts("Ping-pong matrix walk (strides +40KB / -39.9KB):\n");
    table.print();
    std::puts("\nThe custom predictor plugs into the PSB unchanged and"
              " captures the\nalternating pattern neither built-in"
              " predictor can follow.");
    return 0;
}
