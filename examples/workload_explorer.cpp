/**
 * @file
 * Run every synthetic benchmark analog on every paper configuration
 * and print a compact matrix — a one-binary tour of the evaluation.
 *
 * Usage: workload_explorer [instructions] [workload...]
 *   instructions  per-simulation measurement length (default 300000)
 *   workload...   subset of the registry (default: the full registry,
 *                 paper six plus graph/hashjoin/logscan/fuzz)
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "sim/simulator.hh"
#include "util/table_printer.hh"
#include "workloads/workload.hh"

int
main(int argc, char **argv)
{
    uint64_t instructions =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 300'000;

    std::vector<std::string> names;
    for (int i = 2; i < argc; ++i)
        names.push_back(argv[i]);
    if (names.empty())
        names = psb::allWorkloadNames();

    psb::TablePrinter table;
    table.addRow({"workload", "config", "IPC", "L1D MR", "load lat",
                  "pf acc", "bus util"});

    for (const std::string &name : names) {
        for (psb::PaperConfig cfg : psb::paperConfigs) {
            auto trace = psb::makeWorkload(name);
            if (!trace) {
                std::fprintf(stderr, "unknown workload '%s'\n",
                             name.c_str());
                return 1;
            }
            psb::SimConfig sim_cfg = psb::makePaperConfig(cfg);
            sim_cfg.maxInstructions = instructions;
            psb::Simulator sim(sim_cfg, *trace);
            psb::SimResult r = sim.run();

            table.addRow({name, psb::paperConfigName(cfg),
                          psb::TablePrinter::fmt(r.ipc, 3),
                          psb::TablePrinter::fmt(r.l1dMissRate, 4),
                          psb::TablePrinter::fmt(r.avgLoadLatency, 2),
                          psb::TablePrinter::fmt(
                              100.0 * r.prefetchAccuracy, 1) + "%",
                          psb::TablePrinter::fmt(
                              100.0 * r.l1L2BusUtil, 1) + "%"});
        }
    }
    table.print();
    return 0;
}
