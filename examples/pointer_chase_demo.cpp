/**
 * @file
 * The paper's motivating scenario in miniature: a linked-list
 * traversal whose nodes were scatter-allocated, so no fixed stride
 * exists. The demo builds that traversal directly with the public
 * TraceBuilder API (no canned workload), then races four machines:
 *
 *   - no prefetching,
 *   - Jouppi sequential stream buffers (next-block),
 *   - Farkas PC-stride stream buffers,
 *   - predictor-directed stream buffers with the SFM predictor.
 *
 * Sequential and stride buffers chase the wrong addresses; the PSB
 * learns the pointer chain through its Markov table and runs ahead
 * of it. This is Figure 5's pointer-benchmark story in one file.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "sim/simulator.hh"
#include "trace/synthetic_heap.hh"
#include "trace/trace_builder.hh"
#include "util/table_printer.hh"

namespace
{

/** Endless traversal of one scatter-allocated linked list. */
class ListChase : public psb::TraceBuilder
{
  public:
    explicit ListChase(unsigned nodes)
    {
        // Scatter allocations so consecutive nodes share no stride.
        psb::SyntheticHeap heap(psb::Addr{0x10000000},
                                /*scatter_blocks=*/64, /*seed=*/7);
        _nodes.reserve(nodes);
        for (unsigned i = 0; i < nodes; ++i)
            _nodes.push_back(heap.alloc(48, 8));
    }

  protected:
    bool
    step() override
    {
        // while (p) { sum += p->value; p = p->next; }
        constexpr uint8_t r_p = 1;
        constexpr uint8_t r_val = 2;
        constexpr uint8_t r_sum = 3;
        psb::Addr node = _nodes[_pos];
        emitLoad(psb::Addr{0x400000}, r_p, node + 0, r_p); // p = p->next
        emitLoad(psb::Addr{0x400004}, r_val, node + 8, r_p); // p->value
        emitAlu(psb::Addr{0x400008}, r_sum, r_sum, r_val);
        emitAlu(psb::Addr{0x40000c}, r_val, r_val);
        emitBranch(psb::Addr{0x400010}, _pos + 1 < _nodes.size(),
                   psb::Addr{0x400000}, r_p);
        _pos = (_pos + 1) % _nodes.size();
        return true;
    }

  private:
    std::vector<psb::Addr> _nodes;
    size_t _pos = 0;
};

} // namespace

int
main()
{
    struct Machine
    {
        const char *label;
        psb::PrefetcherKind kind;
    };
    const Machine machines[] = {
        {"no prefetch", psb::PrefetcherKind::None},
        {"sequential SB (Jouppi)", psb::PrefetcherKind::Sequential},
        {"PC-stride SB (Farkas)", psb::PrefetcherKind::PcStride},
        {"PSB + SFM (this paper)", psb::PrefetcherKind::Psb},
    };

    psb::TablePrinter table;
    table.addRow({"machine", "IPC", "avg load lat", "pf accuracy",
                  "speedup"});

    double base_ipc = 0.0;
    for (const Machine &m : machines) {
        ListChase trace(1'500); // ~70 KB of nodes, 2x the L1
        psb::SimConfig cfg;
        cfg.prefetcher = m.kind;
        cfg.warmupInstructions = 150'000;
        cfg.maxInstructions = 300'000;
        cfg.harmonize();

        psb::Simulator sim(cfg, trace);
        psb::SimResult r = sim.run();
        if (m.kind == psb::PrefetcherKind::None)
            base_ipc = r.ipc;

        char speedup[32];
        std::snprintf(speedup, sizeof(speedup), "%+.1f%%",
                      base_ipc > 0 ? 100.0 * (r.ipc / base_ipc - 1.0)
                                   : 0.0);
        table.addRow({m.label, psb::TablePrinter::fmt(r.ipc, 3),
                      psb::TablePrinter::fmt(r.avgLoadLatency, 2),
                      psb::TablePrinter::fmt(100.0 * r.prefetchAccuracy,
                                             1) + "%",
                      speedup});
    }

    std::puts("Pointer chase over a scattered linked list "
              "(1500 nodes, ~70 KB):\n");
    table.print();
    std::puts("\nOnly the predictor-directed stream buffers follow the"
              " pointer chain.");
    return 0;
}
