/**
 * @file
 * Quickstart: simulate one workload on the paper's baseline machine
 * and on predictor-directed stream buffers (ConfAlloc-Priority), then
 * print both reports and the speedup.
 *
 * Usage: quickstart [workload] [instructions]
 *   workload      health | burg | deltablue | gs | sis | turb3d
 *                 (default: health)
 *   instructions  measurement-region length (default: 500000)
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "sim/report.hh"
#include "sim/simulator.hh"
#include "workloads/workload.hh"

int
main(int argc, char **argv)
{
    std::string workload = argc > 1 ? argv[1] : "health";
    uint64_t instructions = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                     : 500'000;

    auto run = [&](psb::PaperConfig cfg) {
        auto trace = psb::makeWorkload(workload);
        if (!trace) {
            std::fprintf(stderr, "unknown workload '%s'\n",
                         workload.c_str());
            std::exit(1);
        }
        psb::SimConfig sim_cfg = psb::makePaperConfig(cfg);
        sim_cfg.maxInstructions = instructions;
        psb::Simulator sim(sim_cfg, *trace);
        return sim.run();
    };

    psb::SimResult base = run(psb::PaperConfig::Base);
    psb::SimResult psb_result = run(psb::PaperConfig::ConfAllocPriority);

    psb::printReport(workload + " / baseline (no prefetching)", base);
    psb::printReport(workload + " / PSB ConfAlloc-Priority", psb_result);

    double speedup = base.ipc > 0.0
        ? 100.0 * (psb_result.ipc / base.ipc - 1.0) : 0.0;
    std::printf("\nPSB speedup over baseline: %+.1f%%\n", speedup);
    return 0;
}
