/**
 * @file
 * A narrated walk through one stream buffer's life (paper §4.1):
 * allocation on a filtered miss, per-cycle predictions from the shared
 * SFM predictor, bus-gated prefetch issue, lookups that hit, and the
 * priority counter's rise. Drives the PSB directly — no core, no
 * workload — so every event is visible.
 */

#include <cstdio>

#include "core/psb.hh"
#include "memory/hierarchy.hh"
#include "predictors/sfm_predictor.hh"

using namespace psb;

namespace
{

void
dumpBuffers(const PredictorDirectedStreamBuffers &psb)
{
    const StreamBufferFile &file = psb.bufferFile();
    for (unsigned b = 0; b < file.numBuffers(); ++b) {
        const StreamBuffer &buf = file.buffer(b);
        if (!buf.allocated())
            continue;
        std::printf("  buffer %u: pc=%#llx last=%#llx stride=%lld "
                    "priority=%u |",
                    b, (unsigned long long)buf.state.loadPc.raw(),
                    (unsigned long long)buf.state.lastAddr.raw(),
                    (long long)buf.state.stride.raw(),
                    buf.priority.value());
        for (const SbEntry &e : buf.entries()) {
            if (!e.valid)
                std::printf(" [----]");
            else
                std::printf(" [%#llx%s]",
                            (unsigned long long)e.block.raw(),
                            e.prefetched ? "*" : "?");
        }
        std::printf("   (* = prefetch issued, ? = awaiting bus)\n");
    }
}

} // namespace

int
main()
{
    MemoryConfig mem_cfg;
    mem_cfg.tlbMissPenalty = CycleDelta{};
    MemoryHierarchy hier(mem_cfg);
    SfmPredictor sfm;
    PsbConfig cfg; // ConfAlloc-Priority, the paper's best configuration
    PredictorDirectedStreamBuffers psb(cfg, sfm, hier);

    constexpr Addr pc{0x400010};
    // A short pointer chain, scattered like heap nodes.
    const Addr chain[] = {Addr{0x10000}, Addr{0x2f840},
                          Addr{0x11230 & ~0x1full}, Addr{0x48660},
                          Addr{0x21a20}, Addr{0x3cd00},
                          Addr{0x15e80}, Addr{0x50240}};

    std::puts("== 1. training: the write-back stage sees the chain's "
              "misses twice ==");
    for (int pass = 0; pass < 2; ++pass)
        for (Addr a : chain)
            sfm.train(pc, a);
    std::printf("  stride-table confidence for load %#llx: %u "
                "(threshold for allocation: %u)\n",
                (unsigned long long)pc.raw(), sfm.confidence(pc),
                cfg.buffers.allocConfThreshold);
    std::printf("  Markov table now holds %llu transitions\n\n",
                (unsigned long long)sfm.markovTable().population());

    std::puts("== 2. allocation: the chain head misses L1D and every "
              "buffer ==");
    psb.demandMiss(pc, chain[0], Cycle{});
    dumpBuffers(psb);

    std::puts("\n== 3. prediction + prefetch: one predictor access "
              "and one bus slot per cycle ==");
    for (Cycle now{1}; now <= Cycle{4}; ++now) {
        psb.tick(now);
        std::printf(" cycle %llu: predictions=%llu prefetches=%llu\n",
                    (unsigned long long)now.raw(),
                    (unsigned long long)psb.stats().predictions,
                    (unsigned long long)psb.stats().prefetchesIssued);
    }
    dumpBuffers(psb);
    std::puts("  (the first prefetch holds the serial L1-L2 bus; the "
              "rest queue behind it)");

    // Let the remaining prefetches win bus slots.
    for (Cycle c{5}; c < Cycle{80}; ++c)
        psb.tick(c);

    std::puts("\n== 4. the demand stream catches up: lookups hit the "
              "buffer ==");
    Cycle now{500}; // far past the fills
    for (unsigned i = 1; i <= 4; ++i) {
        PrefetchLookup hit = psb.lookup(chain[i], now);
        std::printf("  load of %#llx: %s%s\n",
                    (unsigned long long)chain[i].raw(),
                    hit.hit ? "STREAM BUFFER HIT" : "miss",
                    hit.dataPending ? " (data still in flight)" : "");
        psb.tick(now); // freed entry refills from the predictor
        psb.tick(now + CycleDelta(1));
        now += CycleDelta(2);
    }

    std::puts("\n== 5. the priority counter rose with every hit ==");
    dumpBuffers(psb);
    std::printf("\n  accuracy so far: %llu used / %llu issued = %.0f%%\n",
                (unsigned long long)psb.stats().prefetchesUsed,
                (unsigned long long)psb.stats().prefetchesIssued,
                100.0 * psb.stats().accuracy());
    std::puts("  A competing load now needs confidence >= this "
              "priority to steal the buffer\n  (paper §4.3) — that is "
              "how confidence allocation ends stream thrashing.");
    return 0;
}
